"""Skeleton graphs (Section 6, Lemmas 3.4 and 6.1–6.4).

Given (possibly approximate) distances from every node to its k-nearest
set, the skeleton construction reduces APSP on ``G`` to APSP on a graph
``G_S`` with ``O(n log k / k)`` nodes, losing a factor ``7 l a^2``:

1. **Hitting set** ``S`` (Lemma 6.2): sample each node with probability
   ``ln k / k``, O(log n) parallel repetitions, plus the deterministic
   fix-up that adds every node whose ``~N_k`` set was missed.
2. **Centers**: ``c(u)`` is the skeleton node nearest to ``u`` under the
   given estimate ``delta`` (ties by ID).
3. **Skeleton edges**: for every triplet ``(u, v, t)`` with ``t ∈ ~N_k(u)``
   and (``{t, v} ∈ E`` or ``t = v``), an edge ``c(u) -- c(v)`` of weight
   ``delta(c(u), u) + delta(u, t) + w_tv + delta(v, c(v))``, realised with
   the ``x``/``y`` matrices and one sparse min-plus product.
4. **Extension** (Lemma 6.3): given an l-approximation on ``G_S``,
   ``eta(u, v) = delta(u, c(u)) + delta_GS(c(u), c(v)) + delta(c(v), v)``
   for pairs outside the known sets, and ``delta(u, v)`` inside.

The implementation follows the matrix formulation of Section 6.2 exactly,
with the sparse products charged at the measured densities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..cclique.accounting import RoundLedger
from ..graphs.graph import WeightedGraph
from ..semiring.minplus import INF
from ..semiring.sparse import sparse_minplus
from . import params


class SkeletonError(ValueError):
    """Invalid inputs to the skeleton construction."""


@dataclass
class Skeleton:
    """The output of the Lemma 6.1 construction.

    Attributes
    ----------
    nodes:
        Skeleton node IDs in ``G`` (sorted).
    graph:
        ``G_S`` re-indexed to ``0 .. |S|-1`` (position in ``nodes``).
    center:
        ``center[u]`` = compact index (into ``nodes``) of ``c(u)``.
    center_delta:
        ``delta(u, c(u))`` per node.
    known_values / known mask:
        The symmetric "local" estimate: ``delta(u, v)`` for ``v ∈ ~N_k(u)``
        (or ``u ∈ ~N_k(v)``), inf elsewhere.
    a:
        The approximation factor the input estimate satisfied.
    k:
        Neighbourhood size used.
    """

    nodes: np.ndarray
    graph: WeightedGraph
    center: np.ndarray
    center_delta: np.ndarray
    known: np.ndarray
    a: float
    k: int
    size_bound: float

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)


def build_hitting_set(
    nbr_indices: np.ndarray,
    n: int,
    k: int,
    rng: np.random.Generator,
    repetitions: Optional[int] = None,
    ledger: Optional[RoundLedger] = None,
) -> np.ndarray:
    """Lemma 6.2's hitting set: ``S`` intersects every ``~N_k(v)``.

    Runs ``O(log n)`` independent repetitions of (sample with probability
    ``ln k / k``; add every node whose set was missed) and keeps the
    smallest result — exactly the amplification argument in the proof.
    Returns a sorted array of member IDs.
    """
    if nbr_indices.shape[0] != n:
        raise SkeletonError("neighbour table must have one row per node")
    if repetitions is None:
        repetitions = max(1, int(math.ceil(math.log2(max(2, n)))))
    probability = min(1.0, math.log(max(2, k)) / k)
    best: Optional[np.ndarray] = None
    for _ in range(repetitions):
        sampled = rng.random(n) < probability
        member_rows = np.where(nbr_indices >= 0, sampled[nbr_indices], False)
        missed = ~member_rows.any(axis=1)
        sampled = sampled | missed
        if best is None or sampled.sum() < best.sum():
            best = sampled
    assert best is not None
    if ledger is not None:
        ledger.charge_hitting_set()
    return np.flatnonzero(best)


def skeleton_xy_matrices(
    graph: WeightedGraph,
    nbr_indices: np.ndarray,
    nbr_values: np.ndarray,
    center: np.ndarray,
    center_delta: np.ndarray,
    size: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """The ``x`` and ``y`` matrices of Lemma 6.2 (Step 3 of Section 6.1).

    ``x[s_a, t] = min over u with c(u)=s_a, t ∈ ~N_k(u) of
    delta(s_a, u) + delta(u, t)``;
    ``y[t, s_b] = min over v with c(v)=s_b and {t, v} ∈ E of
    w_tv + delta(v, s_b)``, plus the ``t = v`` case (weight 0).

    Exposed publicly so the message-level protocol implementation can be
    cross-validated against exactly this computation.
    """
    n = graph.n
    k = nbr_indices.shape[1]
    x = np.full((size, n), INF)
    rows = np.repeat(center, k)
    cols = nbr_indices.ravel()
    vals = (center_delta[:, None] + nbr_values).ravel()
    keep = (cols >= 0) & np.isfinite(vals)
    np.minimum.at(x, (rows[keep], cols[keep]), vals[keep])

    y = np.full((n, size), INF)
    eu = graph.edge_u
    ev = graph.edge_v
    ew = graph.edge_w
    if len(eu):
        np.minimum.at(y, (eu, center[ev]), ew + center_delta[ev])
        np.minimum.at(y, (ev, center[eu]), ew + center_delta[eu])
    np.minimum.at(y, (np.arange(n), center), center_delta)
    return x, y


def build_skeleton(
    graph: WeightedGraph,
    nbr_indices: np.ndarray,
    nbr_values: np.ndarray,
    k: int,
    rng: np.random.Generator,
    a: float = 1.0,
    ledger: Optional[RoundLedger] = None,
) -> Skeleton:
    """Lemmas 3.4 / 6.1: construct the skeleton graph ``G_S`` in O(1) rounds.

    Parameters
    ----------
    graph:
        The weighted undirected input graph ``G``.
    nbr_indices, nbr_values:
        ``(n, k)`` arrays: ``~N_k(u)`` member IDs (ID/value sorted, -1 pad)
        and the estimates ``delta(u, .)`` on them.  For the simplified
        Lemma 3.4, pass the exact k-nearest output of Lemma 3.3 and
        ``a = 1``.  For the full Lemma 6.1, the caller is responsible for
        conditions (C1)/(C2) — checked in tests via
        :func:`verify_skeleton_conditions`.
    k:
        Neighbourhood size (``nbr_indices.shape[1]``).
    a:
        Approximation factor of the supplied estimates.
    """
    if graph.directed:
        raise SkeletonError("skeleton graphs require an undirected graph")
    n = graph.n
    if nbr_indices.shape != (n, k) or nbr_values.shape != (n, k):
        raise SkeletonError("neighbour tables must be (n, k)")

    # Step 1: hitting set.
    members = build_hitting_set(nbr_indices, n, k, rng, ledger=ledger)
    size = len(members)
    compact = np.full(n, -1, dtype=np.int64)
    compact[members] = np.arange(size)

    # Step 2: centers.  Rows of nbr_* are sorted by (value, ID), so the
    # first member of S in each row is the delta-closest, ID tie-broken.
    in_s = np.zeros(n, dtype=bool)
    in_s[members] = True
    member_mask = np.where(nbr_indices >= 0, in_s[nbr_indices], False)
    if not member_mask.any(axis=1).all():
        raise SkeletonError("hitting set misses some ~N_k(v); fix-up failed")
    first_pos = member_mask.argmax(axis=1)
    center_node = nbr_indices[np.arange(n), first_pos]
    center = compact[center_node]
    center_delta = nbr_values[np.arange(n), first_pos]

    # Step 3: x and y matrices.
    x, y = skeleton_xy_matrices(
        graph, nbr_indices, nbr_values, center, center_delta, size
    )

    # Step 4: skeleton edge weights via one sparse min-plus product,
    # priced with the analytic density bounds of Lemma 6.2
    # (rho_X <= k, rho_Y <= |S|, rho_XY <= |S|^2 / n).
    product = sparse_minplus(
        x,
        y,
        ledger=ledger,
        rho_st_bound=max(1.0, size * size / max(1, n)),
        clique_n=n,
        detail="skeleton edge weights X*Y [Lemma 6.2]",
    )
    weights = np.minimum(product.product, product.product.T)
    np.fill_diagonal(weights, INF)  # self-loops are not edges
    rows, cols = np.nonzero(np.isfinite(weights))
    upper = rows < cols
    rows, cols = rows[upper], cols[upper]
    skeleton_graph = WeightedGraph.from_arrays(
        size if size > 0 else 1,
        rows,
        cols,
        weights[rows, cols],
        require_positive=False,
        require_integer=False,
    )

    # The symmetric "known" estimate used by the extension step.
    known = np.full((n, n), INF)
    rows_all = np.repeat(np.arange(n), k)
    cols_all = nbr_indices.ravel()
    keep = (cols_all >= 0) & np.isfinite(nbr_values.ravel())
    np.minimum.at(known, (rows_all[keep], cols_all[keep]), nbr_values.ravel()[keep])
    known = np.minimum(known, known.T)
    np.fill_diagonal(known, 0.0)

    return Skeleton(
        nodes=members,
        graph=skeleton_graph,
        center=center,
        center_delta=center_delta,
        known=known,
        a=float(a),
        k=k,
        size_bound=params.skeleton_size_bound(n, k),
    )


def extend_estimate(
    skeleton: Skeleton,
    delta_gs: np.ndarray,
    l_factor: float,
    ledger: Optional[RoundLedger] = None,
) -> Tuple[np.ndarray, float]:
    """Lemma 6.3/6.4: extend an l-approximation on ``G_S`` to ``G``.

    ``delta_gs`` is indexed by compact skeleton indices.  Returns
    ``(eta, factor)`` with ``factor = 7 l a^2`` (Lemma 6.4).  The matrix
    products ``A^T D A`` of Lemma 6.3 have density-1 factors; the two
    sparse products are charged on the ledger.
    """
    size = skeleton.num_nodes
    delta_gs = np.asarray(delta_gs, dtype=np.float64)
    if delta_gs.shape != (size, size):
        raise SkeletonError("delta_gs must be (|S|, |S|)")
    if ledger is not None:
        # B = D A (densities |S|^2/n, 1 -> |S|) and A^T B (1, |S| -> n);
        # both products are O(1) rounds by the [CDKL21] formula.
        n = len(skeleton.center)
        ledger.charge_sparse_matmul(
            max(1.0, size * size / max(1, n)),
            1.0,
            size,
            detail="eta assembly D*A [Lemma 6.3]",
        )
        ledger.charge_sparse_matmul(
            1.0, size, n, detail="eta assembly A^T*B [Lemma 6.3]"
        )
    through = (
        skeleton.center_delta[:, None]
        + delta_gs[skeleton.center][:, skeleton.center]
        + skeleton.center_delta[None, :]
    )
    eta = np.where(np.isfinite(skeleton.known), skeleton.known, through)
    np.fill_diagonal(eta, 0.0)
    eta = np.minimum(eta, eta.T)
    factor = 7.0 * l_factor * skeleton.a**2
    return eta, factor


def verify_skeleton_conditions(
    exact: np.ndarray,
    nbr_indices: np.ndarray,
    nbr_values: np.ndarray,
    a: float,
    rtol: float = 1e-9,
) -> bool:
    """Check conditions (C1) and (C2) of Lemma 6.1 against exact distances.

    (C1): ``d(u, v) <= delta(u, v) <= a d(u, v)`` for ``v ∈ ~N_k(u)``.
    (C2): ``delta(u, v) <= a d(u, t)`` for ``v ∈ ~N_k(u)``, ``t ∉ ~N_k(u)``.
    Used by tests and by the Theorem 8.1 pipeline's self-checks.

    Fully array-native: both conditions are evaluated as masked whole-table
    comparisons (no per-vertex Python loop).
    """
    n = exact.shape[0]
    valid = nbr_indices >= 0
    safe = np.where(valid, nbr_indices, 0)
    rows = np.broadcast_to(np.arange(n)[:, None], nbr_indices.shape)
    dv = exact[rows, safe]
    ev = nbr_values
    # (C1) over every valid (u, v) slot at once.
    low = valid & (ev < dv * (1 - rtol))
    high = valid & (ev > a * dv * (1 + rtol))
    if low.any() or high.any():
        return False
    # (C2): per row, max delta inside ~N_k(u) vs min exact distance outside.
    inside = np.zeros((n, n), dtype=bool)
    inside[rows[valid], safe[valid]] = True
    np.fill_diagonal(inside, True)
    max_inside = np.where(valid, ev, -INF).max(axis=1, initial=-INF)
    min_outside = np.where(inside, INF, exact).min(axis=1, initial=INF)
    applies = valid.any(axis=1) & ~inside.all(axis=1)
    violates = applies & (max_inside > a * min_outside * (1 + rtol))
    return not violates.any()
