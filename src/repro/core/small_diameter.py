"""APSP approximation for small weighted diameter graphs (Theorem 7.1).

The Theorem 7.1 pipeline:

1. bootstrap an ``O(log n)``-approximation (Corollary 7.2);
2. repeatedly apply the factor reduction of Lemma 3.1 while it improves
   the guarantee (``O(log log log n)`` applications asymptotically);
3. final stage: sqrt(n)-nearest hopset -> exact sqrt(n)-nearest distances
   (``h = 2``, ``i in O(log log log n)``) -> skeleton with ``k = sqrt(n)``
   -> 3-spanner broadcast (standard model, 21-approximation) or full
   skeleton broadcast (``Congested-Clique[log^3 n]``, 7-approximation).

Also provides the round-limited variant of Lemma 8.2 that stops after ``t``
reductions (the engine of the Theorem 1.2 tradeoff).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..cclique.accounting import RoundLedger
from ..graphs.distances import exact_apsp
from ..graphs.graph import WeightedGraph
from ..graphs.validation import symmetrize_min
from ..spanners.logn_approx import logn_bootstrap
from . import params
from .factor_reduction import (
    _phase,
    reduce_approximation,
    solve_skeleton_apsp,
)
from .hopsets import build_knearest_hopset
from .knearest import knearest_exact_via_hopset
from .results import Estimate
from .skeleton import build_skeleton, extend_estimate


def exact_fallback(
    graph: WeightedGraph,
    ledger: Optional[RoundLedger] = None,
) -> Estimate:
    """Solve a small instance exactly by broadcasting all edges.

    Used whenever a (sub)problem is small enough that its entire edge set
    fits in an O(1)-round broadcast — the brute-force case the paper
    routinely delegates to ("otherwise, the problem can be solved by brute
    force in O(1) rounds").
    """
    if ledger is not None:
        ledger.charge_broadcast(
            3 * graph.num_edges, detail="broadcast full graph (brute force)"
        )
    return Estimate(estimate=exact_apsp(graph), factor=1.0, meta={"exact": True})


def _reduction_would_improve(a: float, eps: float) -> bool:
    """Whether one more Lemma 3.1 application tightens the guarantee.

    The chained factor after a reduction is ``7 (1+eps)(2 sqrt(a) - 1)``;
    iterating past the fixed point only wastes rounds (this is the paper's
    stopping condition "until a in O(log log n)" made concrete).
    """
    b = params.reduction_b(a)
    candidate = 7.0 * (1.0 + eps) * (2 * b - 1)
    return candidate < a


def apsp_small_diameter(
    graph: WeightedGraph,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger] = None,
    mode: str = "cc",
    max_reductions: Optional[int] = None,
    final_stage: bool = True,
    bootstrap_alpha: float = 1.0,
    eps: float = 1.0 / 14.0,
) -> Estimate:
    """Theorem 7.1 (and Lemma 8.2 when round-limited).

    Parameters
    ----------
    graph:
        Weighted undirected graph, ideally of small weighted diameter (the
        algorithm is correct regardless; the *round* guarantee of the
        theorem assumes ``d in (log n)^{O(1)}``).
    rng, ledger:
        Randomness and round accounting.  For the
        ``Congested-Clique[log^3 n]`` variant (7-approximation) pass a
        ledger created with ``bandwidth_words ~ log^2 n`` and
        ``mode="cc3"``.
    mode:
        ``"cc"`` — final skeleton solved via a 3-spanner (21-approx path);
        ``"cc3"`` — final skeleton broadcast in full and solved exactly
        (7-approx path, intended for the larger-bandwidth model).
    max_reductions:
        Cap on Lemma 3.1 applications (Lemma 8.2's ``t``); ``None`` means
        "while it improves the guarantee".
    final_stage:
        When False, stop after the reductions (the Lemma 8.2 behaviour for
        small ``t``: only the first part of the algorithm runs).
    """
    if mode not in ("cc", "cc3"):
        raise ValueError("mode must be 'cc' or 'cc3'")
    if graph.directed:
        raise ValueError("Theorem 7.1 applies to undirected graphs")
    n = graph.n
    if n <= params.exact_small_threshold(n) or graph.num_edges * 3 <= n:
        return exact_fallback(graph, ledger)

    reductions_done = 0
    with _phase(ledger, "thm7.1/bootstrap"):
        boot = logn_bootstrap(graph, rng, ledger=ledger, alpha=bootstrap_alpha)
    delta = symmetrize_min(boot.estimate)
    a = boot.factor

    history = [("bootstrap", a)]
    while _reduction_would_improve(a, eps) and (
        max_reductions is None or reductions_done < max_reductions
    ):
        step = reduce_approximation(
            graph, delta, a, rng, ledger=ledger, eps=eps
        )
        delta, a = step.estimate, step.factor
        reductions_done += 1
        history.append((f"reduction {reductions_done}", a))

    if not final_stage:
        return Estimate(
            estimate=delta,
            factor=a,
            meta={"history": history, "reductions": reductions_done},
        )

    with _phase(ledger, "thm7.1/final"):
        hopset = build_knearest_hopset(graph, delta, a, ledger=ledger)
        augmented = hopset.augmented(graph)
        k = max(1, math.isqrt(n))
        knn = knearest_exact_via_hopset(
            augmented.matrix(), k, 2, hopset.beta_bound, ledger=ledger
        )
        skeleton = build_skeleton(
            augmented, knn.indices, knn.values, k, rng, a=1.0, ledger=ledger
        )
        if mode == "cc":
            inner = solve_skeleton_apsp(
                skeleton.graph,
                clique_n=n,
                b=2,  # 3-spanner, the paper's 21-approximation path
                rng=rng,
                ledger=ledger,
                eps=0.0,
            )
        else:
            if ledger is not None:
                ledger.charge_broadcast(
                    3 * skeleton.graph.num_edges,
                    detail="broadcast full skeleton [CC(log^3 n) variant]",
                )
            inner = Estimate(estimate=exact_apsp(skeleton.graph), factor=1.0)
        eta, factor = extend_estimate(skeleton, inner.estimate, inner.factor, ledger)

    eta = symmetrize_min(eta)
    history.append(("final", factor))
    return Estimate(
        estimate=eta,
        factor=factor,
        meta={
            "history": history,
            "reductions": reductions_done,
            "skeleton_nodes": skeleton.num_nodes,
            "hopset_beta": hopset.beta_bound,
            "mode": mode,
        },
    )


def apsp_round_limited(
    graph: WeightedGraph,
    t: int,
    rng: np.random.Generator,
    ledger: Optional[RoundLedger] = None,
    mode: str = "cc",
    bootstrap_alpha: float = 1.0,
    eps: float = 1.0 / 14.0,
) -> Estimate:
    """Lemma 8.2: ``O(log^{2^{-t}} n)``-approximation in O(t) rounds.

    For ``t`` large enough that the target factor is ``O(log log n)``, this
    is Theorem 7.1 unchanged (in the requested ``mode``); otherwise only
    the bootstrap plus at most ``t`` factor reductions run.
    """
    if t < 1:
        raise ValueError("t must be >= 1")
    n = graph.n
    # "t >= log log log n" regime: run the full algorithm.
    lll = math.log2(max(2.0, math.log2(max(2.0, math.log2(max(2, n))))))
    if t >= max(1.0, lll):
        result = apsp_small_diameter(
            graph,
            rng,
            ledger=ledger,
            mode=mode,
            max_reductions=t,
            bootstrap_alpha=bootstrap_alpha,
            eps=eps,
        )
    else:
        result = apsp_small_diameter(
            graph,
            rng,
            ledger=ledger,
            mode=mode,
            max_reductions=t,
            final_stage=False,
            bootstrap_alpha=bootstrap_alpha,
            eps=eps,
        )
    bound = tradeoff_factor_bound(n, t)
    result.meta["tradeoff_bound"] = bound
    result.meta["t"] = t
    return result


def tradeoff_factor_bound(n: int, t: int, constant: float = 15.0) -> float:
    """The Theorem 1.2 bound ``O(log^{2^{-t}} n)`` with an explicit constant.

    One bootstrap gives ``log2 n``; each reduction maps ``a`` to
    ``15 sqrt(a)``, whose ``t``-fold iterate from ``log n`` is at most
    ``15^2 * (log2 n)^{2^{-t}}`` (the constant absorbs the fixed point of
    ``a -> 15 sqrt(a)``, which is ``225``).
    """
    if n < 2 or t < 0:
        return float("inf")
    return constant**2 * math.log2(n) ** (2.0**-t)
