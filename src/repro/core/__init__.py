"""The paper's contribution: hopsets, k-nearest, skeletons, APSP pipelines."""

from .apsp import approximate_apsp, apsp_theorem11, simulation_bandwidth_words
from .baselines import exact_apsp_baseline, spanner_only_baseline, uy90_baseline
from .factor_reduction import reduce_approximation, solve_skeleton_apsp
from .hopsets import HopsetResult, build_knearest_hopset
from .knearest import (
    BinPlan,
    KNearestResult,
    knearest_exact_via_hopset,
    knearest_iterated,
    knearest_one_round,
    make_bin_plan,
)
from .large_bandwidth import apsp_large_bandwidth, scaled_bandwidth_words
from .params import ReductionPlan, plan_reduction
from .registry import (
    VariantSpec,
    get_variant,
    iter_variants,
    register_variant,
    run_variant,
    variant_names,
)
from .results import Estimate
from .skeleton import (
    skeleton_xy_matrices,
    Skeleton,
    SkeletonError,
    build_hitting_set,
    build_skeleton,
    extend_estimate,
    verify_skeleton_conditions,
)
from .small_diameter import (
    apsp_round_limited,
    apsp_small_diameter,
    exact_fallback,
    tradeoff_factor_bound,
)
from .tradeoff import apsp_tradeoff
from .weight_scaling import (
    ScalingPlan,
    assemble_eta,
    build_scaled_graph,
    clip_estimate,
    plan_scaling,
    verify_scaling_guarantees,
)
from .zero_weights import compress_zero_components, lift_zero_weights

__all__ = [
    "BinPlan",
    "Estimate",
    "HopsetResult",
    "KNearestResult",
    "ReductionPlan",
    "ScalingPlan",
    "Skeleton",
    "SkeletonError",
    "VariantSpec",
    "approximate_apsp",
    "apsp_large_bandwidth",
    "apsp_round_limited",
    "apsp_small_diameter",
    "apsp_theorem11",
    "apsp_tradeoff",
    "assemble_eta",
    "build_hitting_set",
    "build_knearest_hopset",
    "build_scaled_graph",
    "build_skeleton",
    "clip_estimate",
    "compress_zero_components",
    "exact_apsp_baseline",
    "exact_fallback",
    "extend_estimate",
    "get_variant",
    "iter_variants",
    "knearest_exact_via_hopset",
    "knearest_iterated",
    "knearest_one_round",
    "lift_zero_weights",
    "make_bin_plan",
    "plan_reduction",
    "plan_scaling",
    "reduce_approximation",
    "register_variant",
    "run_variant",
    "scaled_bandwidth_words",
    "simulation_bandwidth_words",
    "skeleton_xy_matrices",
    "solve_skeleton_apsp",
    "spanner_only_baseline",
    "tradeoff_factor_bound",
    "uy90_baseline",
    "variant_names",
    "verify_scaling_guarantees",
    "verify_skeleton_conditions",
]
