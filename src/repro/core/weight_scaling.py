"""The weight scaling lemma (Section 8.1, Lemma 8.1).

Reduces distance approximation on ``G`` (for pairs joined by shortest paths
of at most ``h`` hops) to approximation on ``O(log n)`` graphs ``G_i`` of
weighted diameter at most ``ceil(2/eps) * h^2``:

* ``H_i``: round every weight up to the next multiple of ``x = 2^i``;
* ``K_i``: add an edge of weight ``x * B * h^2`` between *every* pair
  (``B = ceil(2/eps)``), keeping minima;
* ``G_i``: divide all weights by ``x``.

The construction and the final assembly of ``eta`` are zero communication
rounds — everything is local arithmetic on known values, exactly as the
lemma states.

**Representation note** (see DESIGN.md): the complete-graph edges of
``K_i`` only matter through the diameter cap, because any path using such
an edge has length at least the cap.  We therefore materialize ``G_i`` as
the sparse rounded graph and *clip* distance estimates at the cap:
``min(est_sparse, cap)`` equals a valid estimate on the true ``G_i``
(tests verify the equivalence against an explicit ``K_i``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..graphs.graph import WeightedGraph


@dataclass
class ScalingPlan:
    """Everything Lemma 8.1 precomputes locally.

    Attributes
    ----------
    h:
        Hop bound of the pairs the reduction covers (the hopset's beta in
        the Theorem 8.1 application).
    eps:
        Target relative rounding error.
    cap:
        The weighted diameter bound ``B * h^2`` of every ``G_i`` (after
        division by ``x``).
    index:
        ``(n, n)`` int array: the scale ``i`` chosen for each pair from the
        coarse estimate ``delta`` (Section 8.1's selection rule).
    needed:
        Sorted list of distinct scale indices actually used.
    """

    h: int
    eps: float
    B: int
    cap: float
    index: np.ndarray
    needed: List[int]


def plan_scaling(delta: np.ndarray, h: int, eps: float) -> ScalingPlan:
    """Choose the scale index per pair (zero rounds; pure local arithmetic).

    Rule from the lemma: if ``delta(u, v) >= (B/2) h^2`` pick the unique
    ``i >= 1`` with ``2^{i-1} B h^2 <= delta(u, v) < 2^i B h^2``; otherwise
    ``i = 0``.
    """
    if h < 1:
        raise ValueError("h must be >= 1")
    if eps <= 0:
        raise ValueError("eps must be positive")
    delta = np.asarray(delta, dtype=np.float64)
    B = math.ceil(2.0 / eps)
    threshold = 0.5 * B * h * h
    index = np.zeros(delta.shape, dtype=np.int64)
    big = np.isfinite(delta) & (delta >= threshold)
    # i = floor(log2(delta / (B h^2))) + 1 on the "big" pairs; the ratio is
    # at least 1/2 there, so i >= 0 (i = 0 covers delta in [B h^2/2, B h^2)).
    ratio = delta[big] / (B * h * h)
    index[big] = np.floor(np.log2(ratio)).astype(np.int64) + 1
    # Unreachable pairs get the largest needed scale (their eta stays inf
    # or capped; the guarantee only covers h-hop-connected pairs).
    if np.any(~np.isfinite(delta)):
        fallback = int(index.max(initial=0))
        index[~np.isfinite(delta)] = fallback
    needed = sorted(int(i) for i in np.unique(index))
    return ScalingPlan(
        h=h,
        eps=eps,
        B=B,
        cap=float(B * h * h),
        index=index,
        needed=needed,
    )


def build_scaled_graph(
    graph: WeightedGraph,
    i: int,
    plan: ScalingPlan,
    materialize_clique: bool = False,
) -> WeightedGraph:
    """Construct ``G_i`` (sparse representation; see module note).

    With ``materialize_clique=True`` the complete-graph cap edges of
    ``K_i`` are added explicitly — used by tests to verify that the sparse
    representation plus clipping is exact; quadratic, so only for small n.
    """
    if i < 0:
        raise ValueError("scale index must be >= 0")
    x = float(2**i)
    cap = plan.cap
    edges = [
        (u, v, min(math.ceil(w / x), cap))
        for u, v, w in graph.edges()
    ]
    if materialize_clique:
        present = {(min(u, v), max(u, v)) for u, v, _ in edges}
        for u in range(graph.n):
            for v in range(u + 1, graph.n):
                if (u, v) not in present:
                    edges.append((u, v, cap))
        # cap also competes with existing heavier edges; the WeightedGraph
        # dedup keeps minima, so appending is enough.
        edges.extend((u, v, cap) for (u, v) in present)
    return WeightedGraph(
        graph.n,
        edges,
        directed=graph.directed,
        require_positive=False,
        require_integer=False,
    )


def clip_estimate(estimate: np.ndarray, plan: ScalingPlan) -> np.ndarray:
    """Clip a sparse-``G_i`` estimate at the diameter cap.

    ``min(est, cap)`` is exactly a valid estimate for the true ``G_i``
    (with the clique edges): ``d_{G_i} = min(d_sparse, cap)``, and clipping
    preserves both the lower bound and the stretch factor.
    """
    out = np.minimum(np.asarray(estimate, dtype=np.float64), plan.cap)
    np.fill_diagonal(out, 0.0)
    return out


def assemble_eta(
    estimates: Dict[int, np.ndarray],
    plan: ScalingPlan,
) -> np.ndarray:
    """Combine per-scale estimates into ``eta`` (zero rounds).

    ``eta(u, v) = 2^i * delta_{G_i}(u, v)`` with ``i = plan.index[u, v]``.
    Every scale in ``plan.needed`` must be present in ``estimates``.
    """
    missing = [i for i in plan.needed if i not in estimates]
    if missing:
        raise ValueError(f"missing estimates for scale indices {missing}")
    n = plan.index.shape[0]
    eta = np.full((n, n), np.inf)
    for i in plan.needed:
        mask = plan.index == i
        eta[mask] = (2.0**i) * np.asarray(estimates[i])[mask]
    np.fill_diagonal(eta, 0.0)
    return eta


def verify_scaling_guarantees(
    exact: np.ndarray,
    eta: np.ndarray,
    hop_ok_mask: np.ndarray,
    l_factor: float,
    eps: float,
    rtol: float = 1e-9,
) -> bool:
    """Check the two Lemma 8.1 conclusions against ground truth.

    * ``eta >= d`` everywhere;
    * ``eta <= (1 + eps) l d`` on pairs with an h-hop shortest path
      (``hop_ok_mask``).
    """
    exact = np.asarray(exact)
    eta = np.asarray(eta)
    off_diag = ~np.eye(exact.shape[0], dtype=bool)
    finite = np.isfinite(exact) & off_diag
    if np.any(eta[finite] < exact[finite] * (1 - rtol)):
        return False
    covered = finite & hop_ok_mask
    bound = (1.0 + eps) * l_factor * exact[covered]
    return bool(np.all(eta[covered] <= bound * (1 + rtol)))
