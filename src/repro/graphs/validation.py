"""Validation helpers for distance estimates and approximation guarantees.

Every algorithm in the paper outputs a distance estimate ``delta`` promising
``d(u, v) <= delta(u, v) <= alpha * d(u, v)``.  These helpers check that
contract against ground truth and report where it fails, so tests and
benchmarks share one definition of "stretch".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class ApproximationReport:
    """Summary of an estimate's quality against exact distances."""

    max_stretch: float
    mean_stretch: float
    median_stretch: float
    underestimates: int
    pairs_checked: int

    @property
    def sound(self) -> bool:
        """True when no pair is underestimated (the lower-bound contract)."""
        return self.underestimates == 0


def check_estimate(
    exact: np.ndarray,
    estimate: np.ndarray,
    rtol: float = 1e-9,
) -> ApproximationReport:
    """Compare an APSP estimate with exact distances.

    Only finite, off-diagonal pairs are assessed.  ``underestimates`` counts
    pairs with ``estimate < exact`` beyond tolerance — the paper's contract
    forbids any.
    """
    exact = np.asarray(exact, dtype=np.float64)
    estimate = np.asarray(estimate, dtype=np.float64)
    if exact.shape != estimate.shape:
        raise ValueError("shape mismatch between exact and estimate")
    n = exact.shape[0]
    off_diag = ~np.eye(n, dtype=bool)
    finite = np.isfinite(exact) & off_diag
    if not np.any(finite):
        return ApproximationReport(1.0, 1.0, 1.0, 0, 0)
    d = exact[finite]
    e = estimate[finite]
    with np.errstate(divide="ignore", invalid="ignore"):
        stretch = np.where(d > 0, e / d, np.where(e > 0, np.inf, 1.0))
    under = int(np.sum(e < d * (1.0 - rtol)))
    finite_stretch = stretch[np.isfinite(stretch)]
    if finite_stretch.size == 0:
        return ApproximationReport(np.inf, np.inf, np.inf, under, int(d.size))
    return ApproximationReport(
        max_stretch=float(np.max(stretch)),
        mean_stretch=float(np.mean(finite_stretch)),
        median_stretch=float(np.median(finite_stretch)),
        underestimates=under,
        pairs_checked=int(d.size),
    )


def assert_valid_approximation(
    exact: np.ndarray,
    estimate: np.ndarray,
    alpha: float,
    rtol: float = 1e-9,
) -> ApproximationReport:
    """Raise ``AssertionError`` unless ``estimate`` is an alpha-approximation."""
    report = check_estimate(exact, estimate, rtol=rtol)
    if not report.sound:
        raise AssertionError(
            f"estimate underestimates {report.underestimates} of "
            f"{report.pairs_checked} pairs"
        )
    if report.max_stretch > alpha * (1.0 + rtol):
        raise AssertionError(
            f"max stretch {report.max_stretch:.4f} exceeds the "
            f"promised factor {alpha:.4f}"
        )
    return report


def is_symmetric(matrix: np.ndarray, rtol: float = 1e-9) -> bool:
    """Whether a (possibly inf-valued) matrix is symmetric."""
    matrix = np.asarray(matrix)
    a, b = matrix, matrix.T
    both_inf = np.isinf(a) & np.isinf(b)
    return bool(np.all(both_inf | np.isclose(a, b, rtol=rtol)))


def symmetrize_min(matrix: np.ndarray) -> np.ndarray:
    """Entrywise minimum of a matrix and its transpose.

    Distance estimates on undirected graphs may be produced asymmetrically
    (Section 4's local computations); taking the minimum preserves the
    lower-bound contract and can only improve the stretch.
    """
    return np.minimum(matrix, matrix.T)
