"""Graph and weight generators for the experiment workloads.

The paper's guarantees are worst-case; the experiments exercise them on
ensembles that stress different aspects:

* **Erdős–Rényi** — the generic dense/sparse mixing workload.
* **Grid / torus** — geometric graphs with large hop diameter.
* **Path with shortcuts ("caterpillar")** — maximal weighted diameter, the
  regime where the ``log d`` factor of Lemma 3.2 matters.
* **Preferential attachment** — heavy-tailed degrees (skewed routing loads).
* **Cluster graphs with zero-weight intra-cluster edges** — the Theorem 2.1
  workload.
* **Weight models** — uniform, exponential-ish ("heavy tail"), and
  polynomially large weights (the model's ``n^{O(1)}`` bound).

All generators take an explicit :class:`numpy.random.Generator` and return a
connected graph (a random spanning tree is always included where needed).
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

import numpy as np

from .graph import WeightedGraph

WeightSampler = Callable[[np.random.Generator, int], np.ndarray]


def uniform_weights(low: int = 1, high: int = 100) -> WeightSampler:
    """Uniform integer weights in ``[low, high]``."""
    if low < 1 or high < low:
        raise ValueError("need 1 <= low <= high")

    def sample(rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.integers(low, high + 1, size=count).astype(np.float64)

    return sample


def heavy_tail_weights(scale: int = 10, cap: int = 10_000) -> WeightSampler:
    """Geometric-ish heavy-tailed integer weights in ``[1, cap]``.

    Exercises the weight-scaling machinery of Lemma 8.1: distances span many
    powers of two, so several scaled graphs ``G_i`` are active.
    """
    if scale < 1 or cap < 1:
        raise ValueError("scale and cap must be >= 1")

    def sample(rng: np.random.Generator, count: int) -> np.ndarray:
        raw = rng.exponential(scale=scale, size=count)
        return np.clip(np.ceil(np.exp(raw / scale * math.log(cap) / 4)), 1, cap)

    return sample


def polynomial_weights(n: int, exponent: float = 2.0) -> WeightSampler:
    """Weights up to ``n**exponent`` (the model's polynomial bound)."""
    cap = max(2, int(n**exponent))

    def sample(rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.integers(1, cap, size=count).astype(np.float64)

    return sample


def unit_weights() -> WeightSampler:
    """All weights 1 (the unweighted case discussed in Section 1)."""

    def sample(rng: np.random.Generator, count: int) -> np.ndarray:
        return np.ones(count, dtype=np.float64)

    return sample


def _random_spanning_tree_edges(
    n: int, rng: np.random.Generator
) -> List[Tuple[int, int]]:
    """A uniform-ish random spanning tree (random attachment order)."""
    order = rng.permutation(n)
    edges = []
    for index in range(1, n):
        parent = order[rng.integers(0, index)]
        edges.append((int(order[index]), int(parent)))
    return edges


def erdos_renyi(
    n: int,
    p: float,
    rng: np.random.Generator,
    weights: Optional[WeightSampler] = None,
    connected: bool = True,
) -> WeightedGraph:
    """G(n, p) with sampled weights; connected by default (adds a tree)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    weights = weights or uniform_weights()
    rows, cols = np.triu_indices(n, k=1)
    mask = rng.random(len(rows)) < p
    pairs = list(zip(rows[mask].tolist(), cols[mask].tolist()))
    if connected:
        pairs.extend(_random_spanning_tree_edges(n, rng))
    w = weights(rng, len(pairs))
    edges = [(u, v, float(wt)) for (u, v), wt in zip(pairs, w)]
    return WeightedGraph(n, edges)


def grid_graph(
    side: int,
    rng: np.random.Generator,
    weights: Optional[WeightSampler] = None,
    torus: bool = False,
) -> WeightedGraph:
    """``side x side`` grid (optionally wrapped into a torus)."""
    if side < 2:
        raise ValueError("side must be >= 2")
    weights = weights or uniform_weights()
    n = side * side
    pairs: List[Tuple[int, int]] = []
    for r in range(side):
        for c in range(side):
            node = r * side + c
            if c + 1 < side:
                pairs.append((node, node + 1))
            elif torus:
                pairs.append((node, r * side))
            if r + 1 < side:
                pairs.append((node, node + side))
            elif torus:
                pairs.append((node, c))
    w = weights(rng, len(pairs))
    edges = [(u, v, float(wt)) for (u, v), wt in zip(pairs, w)]
    return WeightedGraph(n, edges)


def path_with_shortcuts(
    n: int,
    rng: np.random.Generator,
    shortcut_count: int = 0,
    weights: Optional[WeightSampler] = None,
) -> WeightedGraph:
    """A path plus a few random shortcuts — the large-diameter workload.

    With heavy weights this maximizes the weighted diameter ``d``, stressing
    the ``O(a log d)`` hop bound of Lemma 3.2.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    weights = weights or uniform_weights()
    pairs = [(i, i + 1) for i in range(n - 1)]
    for _ in range(shortcut_count):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            pairs.append((int(min(u, v)), int(max(u, v))))
    w = weights(rng, len(pairs))
    edges = [(u, v, float(wt)) for (u, v), wt in zip(pairs, w)]
    return WeightedGraph(n, edges)


def preferential_attachment(
    n: int,
    m: int,
    rng: np.random.Generator,
    weights: Optional[WeightSampler] = None,
) -> WeightedGraph:
    """Barabási–Albert-style heavy-tailed graph (each node attaches to m)."""
    if n < 2 or m < 1:
        raise ValueError("need n >= 2 and m >= 1")
    weights = weights or uniform_weights()
    pairs: List[Tuple[int, int]] = []
    targets = [0]
    for node in range(1, n):
        chosen = set()
        for _ in range(min(m, node)):
            pick = int(targets[rng.integers(0, len(targets))])
            chosen.add(pick)
        for pick in chosen:
            pairs.append((pick, node))
            targets.append(pick)
            targets.append(node)
    w = weights(rng, len(pairs))
    edges = [(u, v, float(wt)) for (u, v), wt in zip(pairs, w)]
    return WeightedGraph(n, edges)


def clustered_zero_weight_graph(
    clusters: int,
    cluster_size: int,
    rng: np.random.Generator,
    inter_weights: Optional[WeightSampler] = None,
) -> WeightedGraph:
    """Clusters joined by weighted edges; intra-cluster edges weigh zero.

    The Theorem 2.1 workload: connected components of the zero-weight
    subgraph must be compressed before running the main algorithm.
    """
    if clusters < 1 or cluster_size < 1:
        raise ValueError("need clusters >= 1 and cluster_size >= 1")
    inter_weights = inter_weights or uniform_weights()
    n = clusters * cluster_size
    edges: List[Tuple[int, int, float]] = []
    for c in range(clusters):
        base = c * cluster_size
        members = list(range(base, base + cluster_size))
        rng.shuffle(members)
        for a, b in zip(members, members[1:]):
            edges.append((a, b, 0.0))
        # A few extra zero edges inside the cluster.
        for _ in range(cluster_size // 2):
            a, b = rng.integers(base, base + cluster_size, size=2)
            if a != b:
                edges.append((int(a), int(b), 0.0))
    inter_pairs: List[Tuple[int, int]] = []
    for c in range(1, clusters):
        previous = int(rng.integers(0, c))
        a = int(rng.integers(0, cluster_size)) + previous * cluster_size
        b = int(rng.integers(0, cluster_size)) + c * cluster_size
        inter_pairs.append((a, b))
    for _ in range(clusters):
        c1, c2 = rng.integers(0, clusters, size=2)
        if c1 != c2:
            a = int(rng.integers(0, cluster_size)) + int(c1) * cluster_size
            b = int(rng.integers(0, cluster_size)) + int(c2) * cluster_size
            inter_pairs.append((a, b))
    w = inter_weights(rng, len(inter_pairs))
    edges.extend(
        (u, v, float(wt)) for (u, v), wt in zip(inter_pairs, w)
    )
    return WeightedGraph(n, edges, require_positive=False)


def random_regularish(
    n: int,
    degree: int,
    rng: np.random.Generator,
    weights: Optional[WeightSampler] = None,
) -> WeightedGraph:
    """Roughly ``degree``-regular graph: union of random perfect matchings."""
    if degree < 1 or n < 2:
        raise ValueError("need n >= 2 and degree >= 1")
    weights = weights or uniform_weights()
    pairs: set = set()
    for _ in range(degree):
        perm = rng.permutation(n)
        for i in range(0, n - 1, 2):
            a, b = int(perm[i]), int(perm[i + 1])
            pairs.add((min(a, b), max(a, b)))
    pairs.update(
        (min(a, b), max(a, b)) for a, b in _random_spanning_tree_edges(n, rng)
    )
    pair_list = sorted(pairs)
    w = weights(rng, len(pair_list))
    edges = [(u, v, float(wt)) for (u, v), wt in zip(pair_list, w)]
    return WeightedGraph(n, edges)


def hypercube_graph(
    dimension: int,
    rng: np.random.Generator,
    weights: Optional[WeightSampler] = None,
) -> WeightedGraph:
    """The ``dimension``-dimensional hypercube (n = 2^dimension nodes).

    Log-diameter, vertex-transitive — a clean stress case for the hopset
    and skeleton constructions (every node's neighbourhood looks alike).
    """
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    weights = weights or uniform_weights()
    n = 1 << dimension
    pairs = [
        (node, node ^ (1 << bit))
        for node in range(n)
        for bit in range(dimension)
        if node < node ^ (1 << bit)
    ]
    w = weights(rng, len(pairs))
    edges = [(u, v, float(wt)) for (u, v), wt in zip(pairs, w)]
    return WeightedGraph(n, edges)


def margulis_expander(
    side: int,
    rng: np.random.Generator,
    weights: Optional[WeightSampler] = None,
) -> WeightedGraph:
    """Margulis-style expander on ``side x side`` nodes (Z_m x Z_m).

    Each node (x, y) connects to (x+y, y), (x-y, y), (x, y+x), (x, y-x),
    (x+1, y) and (x, y+1) (mod m) — constant degree, constant expansion,
    logarithmic diameter.  Expanders are the adversarial case for
    skeleton/hitting-set sizes (neighbourhoods grow as fast as possible).
    """
    if side < 2:
        raise ValueError("side must be >= 2")
    weights = weights or uniform_weights()
    m = side
    n = m * m

    def node(x: int, y: int) -> int:
        return (x % m) * m + (y % m)

    pair_set = set()
    for x in range(m):
        for y in range(m):
            origin = node(x, y)
            for tx, ty in (
                (x + y, y),
                (x - y, y),
                (x, y + x),
                (x, y - x),
                (x + 1, y),
                (x, y + 1),
            ):
                target = node(tx, ty)
                if origin != target:
                    pair_set.add((min(origin, target), max(origin, target)))
    pairs = sorted(pair_set)
    w = weights(rng, len(pairs))
    edges = [(u, v, float(wt)) for (u, v), wt in zip(pairs, w)]
    return WeightedGraph(n, edges)


def random_geometric(
    n: int,
    radius: float,
    rng: np.random.Generator,
    weight_scale: int = 100,
) -> WeightedGraph:
    """Random geometric graph on the unit square; weights = distances.

    Nodes connect when within ``radius``; edge weights are the rounded
    Euclidean distances (times ``weight_scale``), so the shortest-path
    metric approximates the plane — the workload where greedy routing
    from estimates behaves best.  A spanning tree on nearest neighbours
    keeps it connected.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    if radius <= 0:
        raise ValueError("radius must be positive")
    points = rng.random((n, 2))
    diff = points[:, None, :] - points[None, :, :]
    distance = np.sqrt((diff**2).sum(axis=2))
    pairs = []
    for i in range(n):
        for j in range(i + 1, n):
            if distance[i, j] <= radius:
                pairs.append((i, j))
    # connectivity: link each node to its nearest neighbour
    nearest = np.argsort(distance + np.eye(n) * 10, axis=1)[:, 0]
    for i in range(n):
        j = int(nearest[i])
        pairs.append((min(i, j), max(i, j)))
    pair_set = sorted(set(pairs))
    edges = [
        (u, v, float(max(1, round(distance[u, v] * weight_scale))))
        for u, v in pair_set
    ]
    graph = WeightedGraph(n, edges)
    # geometric graphs can still split into clusters; bridge components
    # through a random spanning tree if needed.
    from .distances import is_connected

    if not is_connected(graph):
        extra = _random_spanning_tree_edges(n, rng)
        edges.extend(
            (min(u, v), max(u, v), float(max(1, round(distance[u, v] * weight_scale))))
            for u, v in extra
        )
        graph = WeightedGraph(n, edges)
    return graph


def directed_ring_with_chords(
    n: int,
    chords: int,
    rng: np.random.Generator,
    weights: Optional[WeightSampler] = None,
) -> WeightedGraph:
    """A directed cycle plus random directed chords.

    The directed workload for Sections 4 and 5 (both lemmas hold for
    directed graphs): strongly connected by construction, asymmetric
    distances through the chord shortcuts.
    """
    if n < 3:
        raise ValueError("n must be >= 3")
    weights = weights or uniform_weights()
    pairs = [(i, (i + 1) % n) for i in range(n)]
    for _ in range(chords):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            pairs.append((int(u), int(v)))
    w = weights(rng, len(pairs))
    edges = [(u, v, float(wt)) for (u, v), wt in zip(pairs, w)]
    return WeightedGraph(n, edges, directed=True)
