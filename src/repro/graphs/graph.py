"""Weighted graph container used throughout the reproduction.

The paper's input is a simple weighted graph on ``n`` nodes with polynomially
bounded positive integer weights (Section 2.1); zero weights are handled by
the Theorem 2.1 reduction.  :class:`WeightedGraph` stores the edge list in
numpy arrays and exposes the matrix views the algorithms need:

* a dense weighted adjacency matrix over the min-plus semiring
  (``np.inf`` = no edge, ``0`` on the diagonal), and
* per-node sorted outgoing edge lists (for the "k shortest outgoing edges"
  steps of Sections 4 and 5).

Graphs may be directed (Sections 4 and 5 hold for directed graphs) or
undirected (everything else).  Weights are kept as float64 for numpy
compatibility, but construction validates integrality by default.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from .adjacency import CSRAdjacency, build_csr, min_dedup_edges

INF = np.inf


class GraphError(ValueError):
    """Invalid graph construction or query."""


class WeightedGraph:
    """A weighted graph on nodes ``0 .. n-1`` backed by numpy edge arrays.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        Iterable of ``(u, v, w)`` triples.  For undirected graphs each edge
        should appear once; both orientations are stored internally.
    directed:
        Whether the graph is directed.
    require_positive:
        Enforce strictly positive weights (the paper's standing assumption;
        disable only for the zero-weight machinery of Theorem 2.1).
    require_integer:
        Enforce integral weights (Section 2.1).  Scaled graphs produced by
        Lemma 8.1 remain integral; disable for experimentation only.
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[Tuple[int, int, float]] = (),
        directed: bool = False,
        require_positive: bool = True,
        require_integer: bool = True,
    ) -> None:
        if n < 1:
            raise GraphError("graph needs at least one node")
        self.n = int(n)
        self.directed = bool(directed)
        triples = list(edges)
        if triples:
            u = np.asarray([t[0] for t in triples], dtype=np.int64)
            v = np.asarray([t[1] for t in triples], dtype=np.int64)
            w = np.asarray([t[2] for t in triples], dtype=np.float64)
        else:
            u = np.zeros(0, dtype=np.int64)
            v = np.zeros(0, dtype=np.int64)
            w = np.zeros(0, dtype=np.float64)
        self._init_from_arrays(u, v, w, require_positive, require_integer)

    def _init_from_arrays(
        self,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray,
        require_positive: bool,
        require_integer: bool,
    ) -> None:
        """Canonicalise edge arrays: validate, drop loops, dedup, sort."""
        self._validate(u, v, w, require_positive, require_integer)
        # Deduplicate parallel edges keeping the minimum weight, and drop
        # self-loops (they never shorten any path with nonnegative weights).
        keep = u != v
        u, v, w = u[keep], v[keep], w[keep]
        if not self.directed and len(u):
            lo = np.minimum(u, v)
            hi = np.maximum(u, v)
            u, v = lo, hi
        u, v, w = min_dedup_edges(u, v, w)
        self.edge_u = u
        self.edge_v = v
        self.edge_w = w
        self._matrix_cache: Optional[np.ndarray] = None
        self._adj_cache: Optional[List[List[Tuple[int, float]]]] = None
        self._csr_cache: Optional[CSRAdjacency] = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_arrays(
        cls,
        n: int,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        edge_w: np.ndarray,
        directed: bool = False,
        require_positive: bool = True,
        require_integer: bool = True,
    ) -> "WeightedGraph":
        """Build a graph from parallel edge arrays without a Python loop.

        The array-native constructor the construction layer uses: same
        canonicalisation (loop drop, min-dedup, sort) as the triple-list
        constructor, but no per-edge tuple materialisation — building a
        100k-edge hopset this way is ~50x cheaper.
        """
        if n < 1:
            raise GraphError("graph needs at least one node")
        graph = cls.__new__(cls)
        graph.n = int(n)
        graph.directed = bool(directed)
        u = np.ascontiguousarray(edge_u, dtype=np.int64)
        v = np.ascontiguousarray(edge_v, dtype=np.int64)
        w = np.ascontiguousarray(edge_w, dtype=np.float64)
        if not (u.shape == v.shape == w.shape) or u.ndim != 1:
            raise GraphError("edge arrays must be 1-D and of equal length")
        graph._init_from_arrays(u, v, w, require_positive, require_integer)
        return graph

    @classmethod
    def from_matrix(
        cls,
        matrix: np.ndarray,
        directed: bool = False,
        require_positive: bool = True,
        require_integer: bool = True,
    ) -> "WeightedGraph":
        """Build a graph from a weighted adjacency matrix (inf = no edge)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise GraphError("adjacency matrix must be square")
        n = matrix.shape[0]
        rows, cols = np.nonzero(np.isfinite(matrix) & ~np.eye(n, dtype=bool))
        if not directed:
            keep = rows < cols
            rows, cols = rows[keep], cols[keep]
        return cls.from_arrays(
            n,
            rows,
            cols,
            matrix[rows, cols],
            directed=directed,
            require_positive=require_positive,
            require_integer=require_integer,
        )

    def _validate(
        self,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray,
        require_positive: bool,
        require_integer: bool,
    ) -> None:
        if len(u) == 0:
            return
        if u.min(initial=0) < 0 or v.min(initial=0) < 0:
            raise GraphError("negative node id")
        if u.max(initial=0) >= self.n or v.max(initial=0) >= self.n:
            raise GraphError("node id out of range")
        if not np.all(np.isfinite(w)):
            raise GraphError("edge weights must be finite")
        if require_positive and np.any(w <= 0):
            raise GraphError(
                "edge weights must be positive integers; use the Theorem 2.1 "
                "reduction (repro.core.zero_weights) for zero weights"
            )
        if not require_positive and np.any(w < 0):
            raise GraphError("negative edge weights are not supported")
        if require_integer and np.any(w != np.floor(w)):
            raise GraphError("edge weights must be integers (Section 2.1)")

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    @property
    def num_edges(self) -> int:
        """Number of stored edges (undirected edges counted once)."""
        return len(self.edge_w)

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over ``(u, v, w)`` triples (one per undirected edge)."""
        for u, v, w in zip(self.edge_u, self.edge_v, self.edge_w):
            yield int(u), int(v), float(w)

    def matrix(self) -> np.ndarray:
        """Dense min-plus adjacency matrix: ``A[v, v] = 0``, inf = no edge.

        The matrix is cached; callers must not mutate it (take a copy).
        """
        if self._matrix_cache is None:
            mat = np.full((self.n, self.n), INF, dtype=np.float64)
            np.fill_diagonal(mat, 0.0)
            if len(self.edge_u):
                np.minimum.at(mat, (self.edge_u, self.edge_v), self.edge_w)
                if not self.directed:
                    np.minimum.at(mat, (self.edge_v, self.edge_u), self.edge_w)
            self._matrix_cache = mat
        return self._matrix_cache

    def csr(self) -> CSRAdjacency:
        """The cached CSR adjacency view (rows sorted by ``(weight, id)``).

        This is the array-native face of :meth:`adjacency`: same content,
        same (weight, neighbour-ID) order per row, but as ``indptr`` /
        ``indices`` / ``weights`` arrays built once per graph.  The
        construction layer (spanners, hopsets, skeletons) works on this
        view; the returned arrays are read-only.
        """
        if self._csr_cache is None:
            self._csr_cache = build_csr(
                self.n, self.edge_u, self.edge_v, self.edge_w, self.directed
            )
        return self._csr_cache

    def adjacency(self) -> List[List[Tuple[int, float]]]:
        """Outgoing adjacency lists sorted by (weight, neighbour id).

        The sort order matches the paper's tie-breaking convention (smallest
        weight first, then smallest ID), so ``adjacency()[u][:k]`` is exactly
        the "k shortest outgoing edges of u" of Sections 4 and 5.

        Kept for per-vertex consumers (the message-level simulator, the
        routing tables); bulk algorithms should use :meth:`csr` instead.
        """
        if self._adj_cache is None:
            csr = self.csr()
            indices = csr.indices.tolist()
            weights = csr.weights.tolist()
            bounds = csr.indptr.tolist()
            self._adj_cache = [
                list(zip(indices[bounds[u]:bounds[u + 1]],
                         weights[bounds[u]:bounds[u + 1]]))
                for u in range(self.n)
            ]
        return self._adj_cache

    def out_degree(self, u: int) -> int:
        """Number of outgoing edges of ``u``."""
        return len(self.adjacency()[u])

    def k_shortest_out_edges(self, u: int, k: int) -> List[Tuple[int, float]]:
        """The ``k`` smallest-weight outgoing edges of ``u`` (ID tie-break)."""
        return self.adjacency()[u][: max(0, int(k))]

    def max_weight(self) -> float:
        """Largest edge weight (0 for an empty graph)."""
        return float(self.edge_w.max(initial=0.0))

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #

    def union(self, other: "WeightedGraph") -> "WeightedGraph":
        """Union ``G ∪ H`` keeping minimum weights on parallel edges.

        Used for augmenting the input with a hopset.  Directedness must
        match.  Hopset edges may repeat graph edges; the dedup keeps the
        lighter copy, which preserves all distances.
        """
        if other.n != self.n:
            raise GraphError("union requires graphs on the same node set")
        if other.directed != self.directed:
            raise GraphError("union requires matching directedness")
        return WeightedGraph.from_arrays(
            self.n,
            np.concatenate([self.edge_u, other.edge_u]),
            np.concatenate([self.edge_v, other.edge_v]),
            np.concatenate([self.edge_w, other.edge_w]),
            directed=self.directed,
            require_positive=False,
            require_integer=False,
        )

    def subgraph_edges(self, mask: np.ndarray) -> "WeightedGraph":
        """Graph with only the edges selected by a boolean ``mask``."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.edge_w.shape:
            raise GraphError("mask length must equal the number of edges")
        return WeightedGraph.from_arrays(
            self.n,
            self.edge_u[mask],
            self.edge_v[mask],
            self.edge_w[mask],
            directed=self.directed,
            require_positive=False,
            require_integer=False,
        )

    def scale_weights(self, factor: float) -> "WeightedGraph":
        """Graph with every weight multiplied by ``factor`` (> 0)."""
        if factor <= 0:
            raise GraphError("scale factor must be positive")
        return WeightedGraph.from_arrays(
            self.n,
            self.edge_u,
            self.edge_v,
            self.edge_w * factor,
            directed=self.directed,
            require_positive=False,
            require_integer=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self.directed else "undirected"
        return f"WeightedGraph(n={self.n}, m={self.num_edges}, {kind})"
