"""Array-native adjacency: the shared CSR view of a :class:`WeightedGraph`.

The construction phases of the paper (Lemma 7.1 spanners, Lemma 3.2
hopsets, Lemma 6.1 skeletons) all walk "the outgoing edges of ``u``" —
historically through per-vertex Python structures (``adjacency()`` lists,
ad-hoc ``Dict[int, Dict[int, float]]`` rebuilds).  This module is the one
array-native replacement: a compressed-sparse-row view with each row
sorted by ``(weight, neighbour id)`` — the paper's tie-breaking convention
— built once per graph and cached (``WeightedGraph.csr()``).

On top of the raw view it provides the vectorized primitives the
construction layer is written in:

* :func:`k_lightest_per_row` — "the k shortest outgoing edges of every
  node" as padded ``(n, k)`` arrays (Sections 4 and 5);
* :func:`min_dedup_edges` — collapse parallel ``(u, v)`` records keeping
  the lightest (what a min-plus multigraph means by an edge);
* :func:`group_min_reduce` — lightest ``(weight, value)`` per integer
  group key, the reduction behind "best edge per adjacent cluster";
* :func:`batched_sssp` / :func:`sssp_on_edges` — exact single-source
  distances on edge arrays via one :func:`scipy.sparse.csgraph.dijkstra`
  call (block-diagonal batching for many independent local subgraphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

INF = np.inf


@dataclass(frozen=True)
class CSRAdjacency:
    """Outgoing adjacency in CSR form, rows sorted by ``(weight, id)``.

    ``indices[indptr[u]:indptr[u+1]]`` are the neighbours of ``u`` in the
    repo-wide order (lightest edge first, node ID tie-break), so the first
    ``k`` entries of a row are exactly the "k shortest outgoing edges of
    u" of Sections 4 and 5.  For undirected graphs both orientations are
    stored.  Arrays are read-only; the view is cached per graph.
    """

    indptr: np.ndarray  # (n + 1,) int64
    indices: np.ndarray  # (m,) int64
    weights: np.ndarray  # (m,) float64

    @property
    def n(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_entries(self) -> int:
        return len(self.indices)

    @property
    def degrees(self) -> np.ndarray:
        """Out-degree per node (``(n,)`` int64)."""
        return np.diff(self.indptr)

    def row(self, u: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(neighbour ids, weights)`` of ``u``, (weight, id)-sorted views."""
        lo, hi = int(self.indptr[u]), int(self.indptr[u + 1])
        return self.indices[lo:hi], self.weights[lo:hi]

    def rows_of(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated rows of ``nodes``: ``(source, neighbour, weight)``.

        The gather is fully vectorized (no per-node Python loop): entry
        positions are reconstructed from ``indptr`` with a repeat/cumsum
        offset trick.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        deg = self.indptr[nodes + 1] - self.indptr[nodes]
        total = int(deg.sum())
        if total == 0:
            empty_i = np.zeros(0, dtype=np.int64)
            return empty_i, empty_i.copy(), np.zeros(0, dtype=np.float64)
        offsets = np.cumsum(deg) - deg
        pos = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets, deg)
            + np.repeat(self.indptr[nodes], deg)
        )
        return np.repeat(nodes, deg), self.indices[pos], self.weights[pos]


def build_csr(
    n: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    edge_w: np.ndarray,
    directed: bool,
) -> CSRAdjacency:
    """Build the (weight, id)-sorted CSR view from canonical edge arrays.

    ``edge_*`` are the deduplicated arrays a :class:`WeightedGraph` stores
    (one record per undirected edge); undirected graphs get both
    orientations materialised here.
    """
    if directed:
        src, dst, wgt = edge_u, edge_v, edge_w
    else:
        src = np.concatenate([edge_u, edge_v])
        dst = np.concatenate([edge_v, edge_u])
        wgt = np.concatenate([edge_w, edge_w])
    order = np.lexsort((dst, wgt, src))
    src, dst, wgt = src[order], dst[order], wgt[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    for arr in (indptr, dst, wgt):
        arr.setflags(write=False)
    return CSRAdjacency(indptr=indptr, indices=dst, weights=wgt)


def k_lightest_per_row(
    csr: CSRAdjacency, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """The ``k`` lightest outgoing edges per node as ``(n, k)`` arrays.

    Returns ``(indices, weights)`` padded with ``(-1, inf)`` — the same
    convention as :func:`repro.semiring.minplus.k_smallest_in_rows`.
    Rows are already (weight, id)-sorted, so this is a pure scatter.
    """
    k = max(0, int(k))
    n = csr.n
    out_idx = np.full((n, k), -1, dtype=np.int64)
    out_w = np.full((n, k), INF, dtype=np.float64)
    if k == 0 or csr.num_entries == 0:
        return out_idx, out_w
    deg = csr.degrees
    rows = np.repeat(np.arange(n, dtype=np.int64), deg)
    slot = np.arange(csr.num_entries, dtype=np.int64) - np.repeat(
        csr.indptr[:-1], deg
    )
    keep = slot < k
    out_idx[rows[keep], slot[keep]] = csr.indices[keep]
    out_w[rows[keep], slot[keep]] = csr.weights[keep]
    return out_idx, out_w


def min_dedup_edges(
    src: np.ndarray, dst: np.ndarray, wgt: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse duplicate ``(src, dst)`` records, keeping the minimum weight.

    The output is sorted by ``(src, dst)``.  This is the array equivalent
    of the historical ``Dict[int, Dict[int, float]]`` min-merge, and the
    required canonicalisation before handing edge arrays to scipy's
    ``csr_matrix`` (whose COO constructor *sums* duplicates).
    """
    if len(src) == 0:
        return (
            np.asarray(src, dtype=np.int64),
            np.asarray(dst, dtype=np.int64),
            np.asarray(wgt, dtype=np.float64),
        )
    order = np.lexsort((wgt, dst, src))
    src, dst, wgt = src[order], dst[order], wgt[order]
    first = np.ones(len(src), dtype=bool)
    first[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
    return src[first], dst[first], wgt[first]


def group_argmin(
    keys: np.ndarray,
    weights: np.ndarray,
    tiebreak: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per distinct ``key``: the index of the entry with lexicographically
    least ``(weight, tiebreak)``.

    Returns ``(unique_keys, argmin_indices)`` with ``unique_keys`` sorted
    ascending; ``argmin_indices[i]`` points into the input arrays, so any
    parallel payload array can be gathered by the caller.  One stable
    sort + one boundary mask — the reduction behind "lightest edge per
    (vertex, adjacent cluster), neighbour-ID tie-break".
    """
    if len(keys) == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    order = np.lexsort((tiebreak, weights, keys))
    sorted_keys = keys[order]
    first = np.ones(len(sorted_keys), dtype=bool)
    first[1:] = sorted_keys[1:] != sorted_keys[:-1]
    return sorted_keys[first], order[first]


def group_min_reduce(
    keys: np.ndarray,
    weights: np.ndarray,
    values: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per distinct ``key``: the entry with lexicographically least
    ``(weight, value)``.

    Returns ``(unique_keys, best_weights, best_values)`` with
    ``unique_keys`` sorted ascending.  This is the "lightest edge to each
    adjacent cluster, neighbour-ID tie-break" reduction of the
    Baswana–Sen construction, lifted to one sort + one mask.
    """
    if len(keys) == 0:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
            np.zeros(0, dtype=np.int64),
        )
    unique_keys, best = group_argmin(keys, weights, values)
    return unique_keys, weights[best], values[best]


def sssp_on_edges(
    n_nodes: int,
    src: np.ndarray,
    dst: np.ndarray,
    wgt: np.ndarray,
    sources: Sequence[int],
    directed: bool = True,
) -> np.ndarray:
    """Exact distances from ``sources`` over raw edge arrays.

    Edges are min-deduplicated, assembled into one scipy CSR matrix, and
    solved with a single :func:`~scipy.sparse.csgraph.dijkstra` call.
    Returns ``(len(sources), n_nodes)`` with ``inf`` for unreachable.
    """
    src, dst, wgt = min_dedup_edges(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(wgt, dtype=np.float64),
    )
    matrix = csr_matrix((wgt, (src, dst)), shape=(n_nodes, n_nodes))
    out = dijkstra(matrix, directed=directed, indices=list(sources))
    return np.atleast_2d(out)


def batched_sssp(
    n_nodes: int,
    block_src: np.ndarray,
    block_dst: np.ndarray,
    block_wgt: np.ndarray,
    block_id: np.ndarray,
    block_sources: np.ndarray,
    dedup: bool = True,
) -> np.ndarray:
    """Independent SSSPs on per-block local subgraphs, one dijkstra call.

    Block ``b`` owns the directed edges ``(block_src[i], block_dst[i])``
    with ``block_id[i] == b`` and the source ``block_sources[b]`` — node
    ids are *global* (``0 .. n_nodes-1``) and blocks do not interact: the
    edges are laid out block-diagonally (block ``b`` shifted by
    ``b * n_nodes``) so a single multi-source dijkstra solves every local
    computation at once.  Returns ``(num_blocks, n_nodes)`` distances,
    row ``b`` being block ``b``'s view of the global node set.

    This is the Step-3 engine of the Lemma 3.2 hopset: each node's "local
    shortest-path computation on the received edges" is one block.

    Pass ``dedup=False`` only when the caller guarantees no duplicate
    ``(block, src, dst)`` records (scipy's COO constructor *sums*
    duplicates, which is wrong for parallel min-plus edges).
    """
    num_blocks = len(block_sources)
    if num_blocks == 0:
        return np.zeros((0, n_nodes), dtype=np.float64)
    shift = np.asarray(block_id, dtype=np.int64) * n_nodes
    src = np.asarray(block_src, dtype=np.int64) + shift
    dst = np.asarray(block_dst, dtype=np.int64) + shift
    wgt = np.asarray(block_wgt, dtype=np.float64)
    if dedup:
        src, dst, wgt = min_dedup_edges(src, dst, wgt)
    total = num_blocks * n_nodes
    matrix = csr_matrix((wgt, (src, dst)), shape=(total, total))
    sources = (
        np.asarray(block_sources, dtype=np.int64)
        + np.arange(num_blocks, dtype=np.int64) * n_nodes
    )
    dist = dijkstra(matrix, directed=True, indices=sources)
    dist = np.atleast_2d(dist)
    # Row b only ever reaches its own diagonal block; slice it back out.
    return dist.reshape(num_blocks, num_blocks, n_nodes)[
        np.arange(num_blocks), np.arange(num_blocks)
    ]


__all__ = [
    "CSRAdjacency",
    "build_csr",
    "k_lightest_per_row",
    "min_dedup_edges",
    "group_argmin",
    "group_min_reduce",
    "sssp_on_edges",
    "batched_sssp",
]
