"""Exact distance computations (ground truth and h-hop distances).

These are the *reference* implementations the experiments compare against:
scipy's Dijkstra gives exact APSP ground truth, and a Bellman-Ford-style
recurrence gives exact ``h``-hop-bounded distances (the matrix power ``A^h``
over the min-plus semiring of Section 2.1).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from .graph import INF, WeightedGraph


def exact_apsp(graph: WeightedGraph) -> np.ndarray:
    """Exact all-pairs distances via Dijkstra (numpy ``(n, n)`` array).

    Unreachable pairs are ``inf``.  This is the evaluation oracle; it is not
    part of the distributed algorithm.
    """
    n = graph.n
    if graph.num_edges == 0:
        out = np.full((n, n), INF)
        np.fill_diagonal(out, 0.0)
        return out
    rows = graph.edge_u
    cols = graph.edge_v
    data = graph.edge_w
    sparse = csr_matrix((data, (rows, cols)), shape=(n, n))
    return dijkstra(sparse, directed=graph.directed, indices=None)


def exact_sssp(graph: WeightedGraph, source: int) -> np.ndarray:
    """Exact single-source distances from ``source``."""
    n = graph.n
    if graph.num_edges == 0:
        out = np.full(n, INF)
        out[source] = 0.0
        return out
    sparse = csr_matrix(
        (graph.edge_w, (graph.edge_u, graph.edge_v)), shape=(n, n)
    )
    return dijkstra(sparse, directed=graph.directed, indices=source)


def hop_limited_distances(
    matrix: np.ndarray,
    hops: int,
    block: int = 64,
) -> np.ndarray:
    """Exact ``h``-hop distances: the min-plus power ``A^h``.

    ``matrix`` must have a zero diagonal (so powers are monotone in ``h``:
    ``A^h[u, v]`` is the minimum length over paths of *at most* ``h`` hops).
    Computed by ``ceil(log2 h)`` min-plus squarings.

    Parameters
    ----------
    matrix:
        ``(n, n)`` min-plus adjacency matrix.
    hops:
        Hop bound ``h >= 1``.
    block:
        Row-block size for the blocked product (memory control).
    """
    if hops < 1:
        raise ValueError("hop bound must be >= 1")
    result = np.array(matrix, dtype=np.float64)
    power = 1
    while power < hops:
        result = minplus_square(result, block=block)
        power *= 2
    return result


def minplus_square(matrix: np.ndarray, block: int = 64) -> np.ndarray:
    """One min-plus squaring ``A -> A (*) A`` (blocked for memory)."""
    return minplus_product(matrix, matrix, block=block)


def minplus_product(a: np.ndarray, b: np.ndarray, block: int = 64) -> np.ndarray:
    """Min-plus (tropical) matrix product ``(A * B)[i, j] = min_k A[i,k]+B[k,j]``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError("inner dimensions must agree")
    rows = a.shape[0]
    cols = b.shape[1]
    out = np.empty((rows, cols), dtype=np.float64)
    for start in range(0, rows, block):
        stop = min(start + block, rows)
        # (block, k, 1) + (1, k, cols) -> min over k
        chunk = a[start:stop, :, None] + b[None, :, :]
        out[start:stop] = chunk.min(axis=1)
    return out


def weighted_diameter(graph: WeightedGraph) -> float:
    """Maximum finite pairwise distance (inf if disconnected)."""
    dist = exact_apsp(graph)
    finite = dist[np.isfinite(dist)]
    if finite.size < graph.n * graph.n:
        return float(INF)
    return float(dist.max())


def weighted_diameter_from_matrix(dist: np.ndarray) -> float:
    """Weighted diameter given a distance matrix (inf if disconnected)."""
    if not np.all(np.isfinite(dist)):
        return float(INF)
    return float(dist.max())


def hop_diameter(graph: WeightedGraph) -> int:
    """Maximum over connected pairs of the minimum hop count between them."""
    n = graph.n
    unit = np.full((n, n), INF)
    np.fill_diagonal(unit, 0.0)
    if graph.num_edges:
        np.minimum.at(unit, (graph.edge_u, graph.edge_v), 1.0)
        if not graph.directed:
            np.minimum.at(unit, (graph.edge_v, graph.edge_u), 1.0)
    sparse = csr_matrix(
        (np.ones(graph.num_edges), (graph.edge_u, graph.edge_v)), shape=(n, n)
    )
    hops = dijkstra(sparse, directed=graph.directed, unweighted=True)
    finite = hops[np.isfinite(hops)]
    return int(finite.max(initial=0))


def is_connected(graph: WeightedGraph) -> bool:
    """Whether every ordered pair is connected (strongly, if directed)."""
    return bool(np.all(np.isfinite(exact_apsp(graph))))


def shortest_path_hop_bound(
    graph: WeightedGraph,
    dist: Optional[np.ndarray] = None,
    max_hops: Optional[int] = None,
) -> np.ndarray:
    """Minimum hops of a *shortest* (minimum-length) path, per pair.

    ``out[u, v]`` is the smallest ``h`` with ``A^h[u, v] == d(u, v)``
    (``inf`` for disconnected pairs).  Used to verify the hopset guarantee:
    the hopset promises a ``beta``-hop shortest path in ``G ∪ H``.
    """
    matrix = graph.matrix()
    n = graph.n
    if dist is None:
        dist = exact_apsp(graph)
    limit = max_hops if max_hops is not None else n
    hops = np.full((n, n), INF)
    hops[np.isclose(matrix, dist) & np.isfinite(dist)] = 1.0
    np.fill_diagonal(hops, 0.0)
    current = np.array(matrix)
    h = 1
    while h < limit:
        nxt = minplus_square(current)
        h *= 2
        newly = np.isclose(nxt, dist) & np.isfinite(dist) & ~np.isfinite(hops)
        # Binary search would be tighter; doubling gives an upper bound
        # within a factor 2, enough for bound checks.
        hops[newly] = float(h)
        current = nxt
        if np.all(np.isfinite(hops[np.isfinite(dist)])):
            break
    return hops
