"""Exact distance computations (ground truth and h-hop distances).

These are the *reference* implementations the experiments compare against:
scipy's Dijkstra gives exact APSP ground truth (memoised across variants
by :class:`ExactOracleCache`), and min-plus matrix powers give exact
``h``-hop-bounded distances (Section 2.1).

The tropical products themselves (``minplus_product``/``minplus_square``)
are served by the kernel registry in :mod:`repro.semiring.kernels` and
re-exported here under their historical names.  ``repro.semiring.kernels``
is a dependency-free leaf module, so this import does not invert the
package layering (see DESIGN.md, "Kernel layer").
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from ..semiring.kernels import minplus as minplus_product  # noqa: F401
from ..semiring.kernels import minplus_power, minplus_square  # noqa: F401
from .graph import INF, WeightedGraph


def exact_apsp(graph: WeightedGraph) -> np.ndarray:
    """Exact all-pairs distances via Dijkstra (numpy ``(n, n)`` array).

    Unreachable pairs are ``inf``.  This is the evaluation oracle; it is not
    part of the distributed algorithm.
    """
    n = graph.n
    if graph.num_edges == 0:
        out = np.full((n, n), INF)
        np.fill_diagonal(out, 0.0)
        return out
    rows = graph.edge_u
    cols = graph.edge_v
    data = graph.edge_w
    sparse = csr_matrix((data, (rows, cols)), shape=(n, n))
    return dijkstra(sparse, directed=graph.directed, indices=None)


def exact_sssp(graph: WeightedGraph, source: int) -> np.ndarray:
    """Exact single-source distances from ``source``.

    When the process-wide :data:`DEFAULT_ORACLE` already holds this
    graph's full APSP matrix, the source row is served from it instead of
    re-running Dijkstra — validation paths that follow a
    ``cached_exact_apsp`` call get their rows for free.  The returned
    array is always a fresh writable copy, whichever path produced it.
    """
    n = graph.n
    cached = DEFAULT_ORACLE.peek(graph)
    if cached is not None:
        return cached[source].copy()
    if graph.num_edges == 0:
        out = np.full(n, INF)
        out[source] = 0.0
        return out
    sparse = csr_matrix(
        (graph.edge_w, (graph.edge_u, graph.edge_v)), shape=(n, n)
    )
    return dijkstra(sparse, directed=graph.directed, indices=source)


def hop_limited_distances(
    matrix: np.ndarray,
    hops: int,
    block: Optional[int] = None,
) -> np.ndarray:
    """Exact ``h``-hop distances: the min-plus power ``A^h``.

    ``matrix`` must have a zero diagonal, which makes powers *monotone*
    in ``h``: every path with at most ``h`` hops is also a path with at
    most ``h' >= h`` hops (pad with zero-weight self-loops), so
    ``A^{h'} <= A^h`` entrywise.  Monotonicity is why the historical
    implementation — plain repeated squaring up to the next power of two
    — was merely an *underestimate*-safe bound rather than exact: for
    ``h = 3`` it returned ``A^4``, whose entries can be strictly smaller
    than the true 3-hop distances.  This function is now exact for every
    ``h``: it delegates to :func:`repro.semiring.kernels.minplus_power`,
    whose square-and-multiply hits the requested exponent precisely.

    Parameters
    ----------
    matrix:
        ``(n, n)`` min-plus adjacency matrix (zero diagonal required).
    hops:
        Hop bound ``h >= 1``.
    block:
        Row-block hint forwarded to the kernel layer (memory control).
    """
    if hops < 1:
        raise ValueError("hop bound must be >= 1")
    return minplus_power(np.asarray(matrix, dtype=np.float64), hops, block=block)


def graph_content_hash(graph: WeightedGraph) -> str:
    """Content digest of a graph: nodes, directedness, and the edge arrays.

    Two graphs with identical edge content hash identically regardless of
    how or when they were constructed (the constructor canonicalises edge
    order and dedup), which is what lets :class:`ExactOracleCache` share
    ground truth across solver variants that each rebuild the same
    workload from the same seed.
    """
    digest = hashlib.sha256()
    digest.update(f"n={graph.n};directed={int(graph.directed)};".encode())
    digest.update(graph.edge_u.tobytes())
    digest.update(graph.edge_v.tobytes())
    digest.update(graph.edge_w.tobytes())
    return digest.hexdigest()


class ExactOracleCache:
    """LRU cache of exact APSP ground truth, keyed by graph content hash.

    Stretch certificates (``SolverConfig(validation=...)``), seed sweeps,
    and frontier tables all compare *every* variant against the same
    Dijkstra oracle; without a cache the oracle is recomputed once per
    variant per graph.  The cache is thread-safe (``solve_many`` runs
    validation from pool workers) and bounded both by entry count and by
    total bytes (the matrices are ``O(n^2)``, so a count bound alone
    would let large-``n`` batches pin gigabytes); LRU eviction enforces
    both.  Returned matrices are marked read-only so a cache hit can be
    shared safely across callers.
    """

    def __init__(
        self, max_entries: int = 64, max_bytes: int = 256 * 2**20
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.hits = 0
        self.misses = 0
        self._store: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._store)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by cached matrices."""
        return self._bytes

    def peek(self, graph: WeightedGraph) -> Optional[np.ndarray]:
        """The cached APSP matrix for ``graph``, or ``None`` — never computes.

        Lets cheap consumers (:func:`exact_sssp` serving one row) reuse
        ground truth someone already paid for without forcing an
        ``O(n^2 log n)`` Dijkstra when nobody did.  Counts a hit when the
        matrix is present; a miss is *not* counted (nothing was computed).
        """
        key = graph_content_hash(graph)
        with self._lock:
            cached = self._store.get(key)
            if cached is not None:
                self._store.move_to_end(key)
                self.hits += 1
            return cached

    def get(self, graph: WeightedGraph) -> np.ndarray:
        """Exact APSP for ``graph``, computed at most once per content.

        The returned array is read-only; take a copy before mutating.
        """
        key = graph_content_hash(graph)
        with self._lock:
            cached = self._store.get(key)
            if cached is not None:
                self._store.move_to_end(key)
                self.hits += 1
                return cached
        # Dijkstra runs outside the lock: concurrent misses on *different*
        # graphs must not serialise (a duplicated miss on the same graph
        # merely wastes one computation and is resolved on insert).
        dist = exact_apsp(graph)
        dist.setflags(write=False)
        with self._lock:
            existing = self._store.get(key)
            if existing is not None:
                self.hits += 1
                return existing
            self.misses += 1
            self._store[key] = dist
            self._bytes += dist.nbytes
            # Evict LRU-first until both bounds hold again.  A single
            # matrix larger than max_bytes is kept alone (evicting it
            # immediately would just thrash on every get).
            while len(self._store) > self.max_entries or (
                self._bytes > self.max_bytes and len(self._store) > 1
            ):
                _, evicted = self._store.popitem(last=False)
                self._bytes -= evicted.nbytes
        return dist

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0


#: Process-wide oracle shared by the solver facade, the CLI, the sweep
#: runner, and the benchmark harness.
DEFAULT_ORACLE = ExactOracleCache()


def cached_exact_apsp(graph: WeightedGraph) -> np.ndarray:
    """:func:`exact_apsp` memoised through :data:`DEFAULT_ORACLE`.

    Returns a read-only matrix; take a copy before mutating.
    """
    return DEFAULT_ORACLE.get(graph)


def weighted_diameter(graph: WeightedGraph) -> float:
    """Maximum finite pairwise distance (inf if disconnected)."""
    dist = exact_apsp(graph)
    finite = dist[np.isfinite(dist)]
    if finite.size < graph.n * graph.n:
        return float(INF)
    return float(dist.max())


def weighted_diameter_from_matrix(dist: np.ndarray) -> float:
    """Weighted diameter given a distance matrix (inf if disconnected)."""
    if not np.all(np.isfinite(dist)):
        return float(INF)
    return float(dist.max())


def hop_diameter(graph: WeightedGraph) -> int:
    """Maximum over connected pairs of the minimum hop count between them."""
    n = graph.n
    unit = np.full((n, n), INF)
    np.fill_diagonal(unit, 0.0)
    if graph.num_edges:
        np.minimum.at(unit, (graph.edge_u, graph.edge_v), 1.0)
        if not graph.directed:
            np.minimum.at(unit, (graph.edge_v, graph.edge_u), 1.0)
    sparse = csr_matrix(
        (np.ones(graph.num_edges), (graph.edge_u, graph.edge_v)), shape=(n, n)
    )
    hops = dijkstra(sparse, directed=graph.directed, unweighted=True)
    finite = hops[np.isfinite(hops)]
    return int(finite.max(initial=0))


def is_connected(graph: WeightedGraph) -> bool:
    """Whether every ordered pair is connected (strongly, if directed)."""
    return bool(np.all(np.isfinite(exact_apsp(graph))))


def shortest_path_hop_bound(
    graph: WeightedGraph,
    dist: Optional[np.ndarray] = None,
    max_hops: Optional[int] = None,
) -> np.ndarray:
    """Minimum hops of a *shortest* (minimum-length) path, per pair.

    ``out[u, v]`` is the smallest ``h`` with ``A^h[u, v] == d(u, v)``
    (``inf`` for disconnected pairs).  Used to verify the hopset guarantee:
    the hopset promises a ``beta``-hop shortest path in ``G ∪ H``.
    """
    matrix = graph.matrix()
    n = graph.n
    if dist is None:
        dist = exact_apsp(graph)
    limit = max_hops if max_hops is not None else n
    hops = np.full((n, n), INF)
    hops[np.isclose(matrix, dist) & np.isfinite(dist)] = 1.0
    np.fill_diagonal(hops, 0.0)
    current = np.array(matrix)
    spare = np.empty_like(current)
    h = 1
    while h < limit:
        nxt = minplus_square(current, out=spare)
        h *= 2
        newly = np.isclose(nxt, dist) & np.isfinite(dist) & ~np.isfinite(hops)
        # Binary search would be tighter; doubling gives an upper bound
        # within a factor 2, enough for bound checks.
        hops[newly] = float(h)
        current, spare = nxt, current
        if np.all(np.isfinite(hops[np.isfinite(dist)])):
            break
    return hops
