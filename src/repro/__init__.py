"""repro — reproduction of "Improved All-Pairs Approximate Shortest Paths in
Congested Clique" (Bui, Chandra, Chang, Dory, Leitersdorf; PODC 2024).

Quickstart::

    import numpy as np
    from repro import approximate_apsp, erdos_renyi

    rng = np.random.default_rng(0)
    graph = erdos_renyi(128, 0.05, rng)
    result = approximate_apsp(graph, rng=rng)
    print(result.factor)                    # guaranteed approximation factor
    print(result.meta["ledger"].total_rounds)  # Congested Clique rounds

Package layout (see DESIGN.md):

* :mod:`repro.cclique` — Congested Clique simulator + round accounting,
* :mod:`repro.graphs` — graph containers, generators, exact distances,
* :mod:`repro.semiring` — min-plus algebra, filtered matrix powers,
* :mod:`repro.spanners` — spanner constructions (Lemma 7.1),
* :mod:`repro.mst` — Borůvka engine for the zero-weight reduction,
* :mod:`repro.core` — the paper's algorithms (Sections 4–8),
* :mod:`repro.analysis` — stretch profiles and experiment tables.
"""

from .cclique import RoundLedger, SimulatedClique
from .core import (
    Estimate,
    approximate_apsp,
    apsp_large_bandwidth,
    apsp_small_diameter,
    apsp_theorem11,
    apsp_tradeoff,
    build_knearest_hopset,
    build_skeleton,
    exact_apsp_baseline,
    knearest_exact_via_hopset,
    knearest_iterated,
    lift_zero_weights,
    reduce_approximation,
    spanner_only_baseline,
    uy90_baseline,
)
from .graphs import (
    WeightedGraph,
    erdos_renyi,
    exact_apsp,
    grid_graph,
    path_with_shortcuts,
    preferential_attachment,
)

__version__ = "1.0.0"

__all__ = [
    "Estimate",
    "RoundLedger",
    "SimulatedClique",
    "WeightedGraph",
    "approximate_apsp",
    "apsp_large_bandwidth",
    "apsp_small_diameter",
    "apsp_theorem11",
    "apsp_tradeoff",
    "build_knearest_hopset",
    "build_skeleton",
    "erdos_renyi",
    "exact_apsp",
    "exact_apsp_baseline",
    "grid_graph",
    "knearest_exact_via_hopset",
    "knearest_iterated",
    "lift_zero_weights",
    "path_with_shortcuts",
    "preferential_attachment",
    "reduce_approximation",
    "spanner_only_baseline",
    "uy90_baseline",
    "__version__",
]
