"""repro — reproduction of "Improved All-Pairs Approximate Shortest Paths in
Congested Clique" (Bui, Chandra, Chang, Dory, Leitersdorf; PODC 2024).

Quickstart — the unified solver facade::

    import numpy as np
    from repro import ApspSolver, SolverConfig, erdos_renyi

    rng = np.random.default_rng(0)
    graphs = [erdos_renyi(128, 0.05, rng) for _ in range(3)]

    solver = ApspSolver(SolverConfig(variant="theorem11", seed=0,
                                     validation="stretch"))
    results = solver.solve_many(graphs)        # concurrent batch execution
    for r in results:
        print(r.factor,                        # guaranteed factor
              r.stretch.max_stretch,           # measured-stretch certificate
              r.total_rounds,                  # Congested Clique rounds
              r.wall_time_s)
    payload = results[0].to_json()             # ship to downstream services

Every algorithm (Theorem 1.1, the Theorem 1.2 tradeoff, Theorem 7.1,
Theorem 8.1, and the exact/UY90/spanner baselines) lives in one variant
registry (:mod:`repro.core.registry`); ``SolverConfig(variant=...)``
selects by name and adding an algorithm is a one-decorator change.

Back-compat path — the legacy convenience function::

    from repro import approximate_apsp

    result = approximate_apsp(graphs[0], rng=np.random.default_rng(0))
    print(result.factor, result.meta["ledger"].total_rounds)

Package layout (see DESIGN.md):

* :mod:`repro.api` — the :class:`ApspSolver` facade, configs, results,
* :mod:`repro.cclique` — Congested Clique simulator + round accounting,
* :mod:`repro.graphs` — graph containers, generators, exact distances,
* :mod:`repro.semiring` — min-plus algebra, filtered matrix powers,
* :mod:`repro.spanners` — spanner constructions (Lemma 7.1),
* :mod:`repro.mst` — Borůvka engine for the zero-weight reduction,
* :mod:`repro.core` — the paper's algorithms (Sections 4–8) + the
  variant registry,
* :mod:`repro.serve` — the distance-oracle query plane (oracle
  artifacts, batch greedy routing, k-nearest, stretch audits) and the
  async serving tier on top (:class:`OracleService`: micro-batched
  front-end, per-tenant stores, metrics),
* :mod:`repro.analysis` — stretch profiles and experiment tables.
"""

from .api import ApspResult, ApspSolver, SolverConfig
from .cclique import ArrayClique, MessageBatch, RoundLedger, SimulatedClique
from .core import (
    Estimate,
    VariantSpec,
    approximate_apsp,
    apsp_large_bandwidth,
    apsp_small_diameter,
    apsp_theorem11,
    apsp_tradeoff,
    build_knearest_hopset,
    build_skeleton,
    exact_apsp_baseline,
    get_variant,
    iter_variants,
    knearest_exact_via_hopset,
    knearest_iterated,
    lift_zero_weights,
    reduce_approximation,
    register_variant,
    run_variant,
    spanner_only_baseline,
    uy90_baseline,
    variant_names,
)
from .graphs import (
    ExactOracleCache,
    WeightedGraph,
    cached_exact_apsp,
    erdos_renyi,
    exact_apsp,
    graph_content_hash,
    grid_graph,
    path_with_shortcuts,
    preferential_attachment,
)
from .semiring import (
    KernelSpec,
    iter_kernels,
    kernel_names,
    minplus,
    register_kernel,
    use_kernel,
)
from .serve import (
    BatchRoutes,
    DistanceOracle,
    MicroBatcher,
    OracleService,
    OracleStore,
    ServiceConfig,
    ServiceMetrics,
    StretchAudit,
    audit_stretch,
    oracle_handle,
    route_batch,
)

__version__ = "1.4.0"

__all__ = [
    "ApspResult",
    "ApspSolver",
    "BatchRoutes",
    "DistanceOracle",
    "Estimate",
    "ExactOracleCache",
    "KernelSpec",
    "ArrayClique",
    "MessageBatch",
    "MicroBatcher",
    "OracleService",
    "OracleStore",
    "ServiceConfig",
    "ServiceMetrics",
    "RoundLedger",
    "SimulatedClique",
    "SolverConfig",
    "StretchAudit",
    "VariantSpec",
    "WeightedGraph",
    "approximate_apsp",
    "audit_stretch",
    "oracle_handle",
    "route_batch",
    "cached_exact_apsp",
    "graph_content_hash",
    "iter_kernels",
    "kernel_names",
    "minplus",
    "use_kernel",
    "apsp_large_bandwidth",
    "apsp_small_diameter",
    "apsp_theorem11",
    "apsp_tradeoff",
    "build_knearest_hopset",
    "build_skeleton",
    "erdos_renyi",
    "exact_apsp",
    "exact_apsp_baseline",
    "get_variant",
    "grid_graph",
    "iter_variants",
    "knearest_exact_via_hopset",
    "knearest_iterated",
    "lift_zero_weights",
    "path_with_shortcuts",
    "preferential_attachment",
    "reduce_approximation",
    "register_kernel",
    "register_variant",
    "run_variant",
    "spanner_only_baseline",
    "uy90_baseline",
    "variant_names",
    "__version__",
]
