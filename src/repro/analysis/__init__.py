"""Analysis helpers: stretch profiles, experiment sweeps, table rendering."""

from .experiments import (
    SweepCase,
    SweepResult,
    SweepSummary,
    registry_algorithms,
    run_registry_sweep,
    run_sweep,
)
from .reporting import emit, format_table, results_path
from .stretch import StretchProfile, stretch_profile, summarize_stretch

__all__ = [
    "StretchProfile",
    "SweepCase",
    "SweepResult",
    "SweepSummary",
    "emit",
    "format_table",
    "registry_algorithms",
    "results_path",
    "run_registry_sweep",
    "run_sweep",
    "stretch_profile",
    "summarize_stretch",
]
