"""Plain-text table rendering for the experiment harness.

The benchmarks print paper-style tables ("who wins, by what factor, where
is the crossover") to stdout and optionally append them to a results file;
EXPERIMENTS.md is assembled from these tables.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table (markdown-compatible pipes)."""
    materialized: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for row in materialized:
        padded = [cell.ljust(w) for cell, w in zip(row, widths)]
        lines.append("| " + " | ".join(padded) + " |")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == int(cell) and abs(cell) < 1e15:
            return str(int(cell))
        return f"{cell:.3f}"
    return str(cell)


def emit(table: str, sink_path: Optional[str] = None) -> None:
    """Print a table; optionally append it to a results file."""
    print()
    print(table)
    print()
    if sink_path:
        with open(sink_path, "a", encoding="utf-8") as sink:
            sink.write(table)
            sink.write("\n\n")


def results_path(default: str = "bench_results.md") -> Optional[str]:
    """Results sink path from ``REPRO_RESULTS`` (None disables writing)."""
    value = os.environ.get("REPRO_RESULTS", "")
    if value == "":
        return None
    if value == "1":
        return default
    return value
