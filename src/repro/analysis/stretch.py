"""Stretch analysis of distance estimates against ground truth."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..graphs.validation import ApproximationReport, check_estimate


@dataclass
class StretchProfile:
    """Distribution of per-pair stretch values for one estimate."""

    report: ApproximationReport
    percentiles: Dict[int, float]
    factor_bound: float

    @property
    def within_bound(self) -> bool:
        """Measured max stretch does not exceed the advertised factor."""
        return self.report.max_stretch <= self.factor_bound * (1 + 1e-9)


def stretch_profile(
    exact: np.ndarray,
    estimate: np.ndarray,
    factor_bound: float,
    percentiles: Sequence[int] = (50, 90, 99, 100),
) -> StretchProfile:
    """Full stretch distribution of an estimate vs exact distances."""
    report = check_estimate(exact, estimate)
    n = exact.shape[0]
    off_diag = ~np.eye(n, dtype=bool)
    mask = np.isfinite(exact) & off_diag & (exact > 0)
    values = np.asarray(estimate)[mask] / np.asarray(exact)[mask]
    values = values[np.isfinite(values)]
    pct: Dict[int, float] = {}
    for p in percentiles:
        pct[p] = float(np.percentile(values, p)) if values.size else 1.0
    return StretchProfile(report=report, percentiles=pct, factor_bound=factor_bound)


def summarize_stretch(profile: StretchProfile) -> str:
    """One-line human-readable summary used by benches and examples."""
    pieces = [
        f"max {profile.report.max_stretch:.3f}",
        f"mean {profile.report.mean_stretch:.3f}",
        f"p50 {profile.percentiles.get(50, float('nan')):.3f}",
        f"bound {profile.factor_bound:.1f}",
        "OK" if profile.within_bound else "VIOLATED",
    ]
    if not profile.report.sound:
        pieces.append(f"UNDERESTIMATES={profile.report.underestimates}")
    return ", ".join(pieces)
