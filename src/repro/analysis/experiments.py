"""Seed-sweep experiment runner.

The paper's randomized guarantees hold w.h.p.; a reproduction should
therefore report *distributions* over seeds, not single runs.  The runner
executes one algorithm across (workload x seed) grids and aggregates
stretch and round statistics into the repo's table format.

Algorithms come either as raw callables (:func:`run_sweep`) or by variant
name from the registry (:func:`registry_algorithms`,
:func:`run_registry_sweep`) — the latter is how experiments stay in sync
with the solver catalogue without hardcoded dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..cclique.accounting import RoundLedger
from ..core.registry import get_variant, iter_variants, run_variant
from ..core.results import Estimate
from ..graphs.distances import cached_exact_apsp
from ..graphs.graph import WeightedGraph
from ..graphs.validation import check_estimate
from .reporting import format_table

#: An algorithm under test: (graph, rng, ledger) -> Estimate.
Algorithm = Callable[[WeightedGraph, np.random.Generator, Optional[RoundLedger]], Estimate]

#: A workload: seed -> graph.
Workload = Callable[[np.random.Generator], WeightedGraph]


@dataclass
class SweepCase:
    """One (workload, seed) execution."""

    workload: str
    seed: int
    n: int
    factor: float
    max_stretch: float
    mean_stretch: float
    rounds: int
    sound: bool


@dataclass
class SweepSummary:
    """Aggregate over the seeds of one workload."""

    workload: str
    runs: int
    factor: float
    max_stretch_worst: float
    max_stretch_mean: float
    max_stretch_std: float
    mean_stretch_mean: float
    rounds_mean: float
    rounds_max: int
    all_sound: bool


@dataclass
class SweepResult:
    """All cases plus per-workload summaries."""

    cases: List[SweepCase] = field(default_factory=list)
    summaries: List[SweepSummary] = field(default_factory=list)

    def table(self, title: str) -> str:
        """Render the per-workload summary as a markdown table."""
        rows = [
            (
                s.workload,
                s.runs,
                round(s.factor, 1),
                round(s.max_stretch_worst, 3),
                f"{s.max_stretch_mean:.3f}+-{s.max_stretch_std:.3f}",
                round(s.mean_stretch_mean, 3),
                round(s.rounds_mean, 1),
                "yes" if s.all_sound else "NO",
            )
            for s in self.summaries
        ]
        return format_table(
            [
                "workload",
                "seeds",
                "factor bound",
                "worst max-stretch",
                "max-stretch mean+-std",
                "mean stretch",
                "rounds mean",
                "sound",
            ],
            rows,
            title=title,
        )


def registry_algorithms(
    variants: Optional[Sequence[str]] = None,
    **params: object,
) -> Dict[str, Algorithm]:
    """Algorithm callables for registered variants, keyed by variant name.

    Enumerates the variant registry (no hardcoded dispatch): every
    registered algorithm — or the requested subset — is wrapped into the
    runner's uniform ``(graph, rng, ledger) -> Estimate`` signature, with
    the variant's declared default parameters (e.g. thm 1.2's ``t=2``)
    merged under any explicit ``params``.
    """
    requested = None
    if variants is not None:
        requested = list(variants)
        for name in requested:
            get_variant(name)  # fail fast on unknown names
    algorithms: Dict[str, Algorithm] = {}
    for spec in iter_variants():
        if requested is not None and spec.name not in requested:
            continue

        def algorithm(
            graph: WeightedGraph,
            rng: np.random.Generator,
            ledger: Optional[RoundLedger],
            _name: str = spec.name,
            _params: Dict[str, object] = dict(params),
        ) -> Estimate:
            return run_variant(
                _name, graph, rng=rng, ledger=ledger, apply_defaults=True, **_params
            )

        algorithms[spec.name] = algorithm
    return algorithms


def run_registry_sweep(
    workloads: Dict[str, Workload],
    seeds: Sequence[int],
    variants: Optional[Sequence[str]] = None,
    clique_n_hint: Optional[int] = None,
    **params: object,
) -> Dict[str, "SweepResult"]:
    """One :func:`run_sweep` per registered variant (or requested subset)."""
    return {
        name: run_sweep(algorithm, workloads, seeds, clique_n_hint=clique_n_hint)
        for name, algorithm in registry_algorithms(variants, **params).items()
    }


def run_sweep(
    algorithm: Algorithm,
    workloads: Dict[str, Workload],
    seeds: Sequence[int],
    clique_n_hint: Optional[int] = None,
) -> SweepResult:
    """Execute ``algorithm`` over every (workload, seed) pair.

    Each case gets its own graph, RNG, and ledger; soundness (no
    underestimates) and the factor bound are *asserted* per case — a
    violated guarantee fails loudly rather than averaging away.
    """
    result = SweepResult()
    for name, factory in workloads.items():
        cases: List[SweepCase] = []
        for seed in seeds:
            rng = np.random.default_rng(seed)
            graph = factory(rng)
            ledger = RoundLedger(clique_n_hint or graph.n)
            estimate = algorithm(graph, rng, ledger)
            # Content-hash memoised: a registry sweep rebuilds the same
            # (workload, seed) graph once per variant, but Dijkstra runs
            # only once across all of them.
            exact = cached_exact_apsp(graph)
            report = check_estimate(exact, estimate.estimate)
            if not report.sound:
                raise AssertionError(
                    f"{name}/seed {seed}: estimate underestimates "
                    f"{report.underestimates} pairs"
                )
            if report.max_stretch > estimate.factor + 1e-9:
                raise AssertionError(
                    f"{name}/seed {seed}: stretch {report.max_stretch} "
                    f"exceeds the factor {estimate.factor}"
                )
            cases.append(
                SweepCase(
                    workload=name,
                    seed=seed,
                    n=graph.n,
                    factor=estimate.factor,
                    max_stretch=report.max_stretch,
                    mean_stretch=report.mean_stretch,
                    rounds=ledger.total_rounds,
                    sound=report.sound,
                )
            )
        result.cases.extend(cases)
        max_stretches = np.array([c.max_stretch for c in cases])
        result.summaries.append(
            SweepSummary(
                workload=name,
                runs=len(cases),
                factor=max(c.factor for c in cases),
                max_stretch_worst=float(max_stretches.max()),
                max_stretch_mean=float(max_stretches.mean()),
                max_stretch_std=float(max_stretches.std()),
                mean_stretch_mean=float(
                    np.mean([c.mean_stretch for c in cases])
                ),
                rounds_mean=float(np.mean([c.rounds for c in cases])),
                rounds_max=max(c.rounds for c in cases),
                all_sound=all(c.sound for c in cases),
            )
        )
    return result
