"""MST substrate (Borůvka engine for the Theorem 2.1 reduction)."""

from .boruvka import (
    DisjointSets,
    connected_components_zero_subgraph,
    minimum_spanning_forest,
)

__all__ = [
    "DisjointSets",
    "connected_components_zero_subgraph",
    "minimum_spanning_forest",
]
