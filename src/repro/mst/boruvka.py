"""Minimum spanning forest via Borůvka (for the Theorem 2.1 reduction).

Appendix A computes the connected components of the zero-weight subgraph by
building an MST with the O(1)-round deterministic algorithm of [Now21] and
letting every node filter it locally.  We implement Borůvka — the same
output object — and charge the [Now21] constant on the ledger at the call
site (see :mod:`repro.core.zero_weights`).

Ties between equal-weight edges are broken by the edge's (weight, u, v)
triple, which keeps the algorithm deterministic and cycle-free.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..graphs.graph import WeightedGraph


class DisjointSets:
    """Union-find with path halving and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True


def minimum_spanning_forest(graph: WeightedGraph) -> List[Tuple[int, int, float]]:
    """Borůvka's algorithm; returns MSF edges as ``(u, v, w)`` triples.

    Works on disconnected graphs (returns a forest).  Deterministic under
    the (weight, u, v) tie-break.
    """
    if graph.directed:
        raise ValueError("MST is defined for undirected graphs")
    n = graph.n
    sets = DisjointSets(n)
    forest: List[Tuple[int, int, float]] = []
    edges = sorted(graph.edges(), key=lambda e: (e[2], e[0], e[1]))
    components = n
    while components > 1:
        # cheapest outgoing edge per component (by the deterministic order).
        cheapest: dict = {}
        for u, v, w in edges:
            ru, rv = sets.find(u), sets.find(v)
            if ru == rv:
                continue
            key = (w, u, v)
            if ru not in cheapest or key < cheapest[ru][0]:
                cheapest[ru] = (key, (u, v, w))
            if rv not in cheapest or key < cheapest[rv][0]:
                cheapest[rv] = (key, (u, v, w))
        if not cheapest:
            break  # remaining components are disconnected
        merged_any = False
        for _, (u, v, w) in sorted(cheapest.values()):
            if sets.union(u, v):
                forest.append((u, v, w))
                components -= 1
                merged_any = True
        if not merged_any:  # pragma: no cover - defensive
            break
    return forest


def connected_components_zero_subgraph(graph: WeightedGraph) -> np.ndarray:
    """Component labels of the zero-weight subgraph, via the MSF.

    Implements Appendix A, Step 1: build the spanning forest, keep only its
    zero-weight edges, and label components.  The leader (Step 2) is the
    smallest node ID in each component; labels returned ARE those leaders.
    """
    n = graph.n
    forest = minimum_spanning_forest(graph)
    sets = DisjointSets(n)
    for u, v, w in forest:
        if w == 0:
            sets.union(u, v)
    leader = np.arange(n, dtype=np.int64)
    for v in range(n):
        root = sets.find(v)
        leader[v] = root
    # Re-label every component by its minimum member ID (the paper's leader
    # rule), not by the union-find root.
    minimum = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    for v in range(n):
        root = leader[v]
        minimum[root] = min(minimum[root], v)
    return minimum[leader]
