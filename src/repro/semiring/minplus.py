"""Min-plus (tropical) semiring matrix algebra.

Section 2.1 frames APSP as exponentiation over the tropical semiring
``R = (Z>=0 ∪ {inf}, min, +)``; Section 5 computes *filtered* powers where
each row keeps only its ``k`` smallest entries (ties broken by node ID).
This module provides:

* row filtering with the paper's exact tie-breaking rule,
* a row-sparse representation (``(n, k)`` index/value arrays) and the
  hop-bounded power over it — the local computation performed by the node
  assigned an h-combination in the Section 5 algorithm.

The dense products themselves (``minplus``, ``minplus_power``, ...) live
in :mod:`repro.semiring.kernels` — the pluggable kernel registry — and
are re-exported here for back-compat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .kernels import (  # noqa: F401  (re-exported for back-compat)
    INF,
    minplus,
    minplus_gather,
    minplus_power,
    minplus_square,
)


def k_smallest_in_rows(matrix: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Indices and values of the ``k`` smallest entries per row.

    Ties are broken by column index (= node ID), matching the paper's
    convention ("breaking ties by node IDs").  Rows with fewer than ``k``
    finite entries are padded with ``(-1, inf)``.

    Returns
    -------
    (indices, values):
        Both of shape ``(n, k)``; ``indices`` is int64, padded with -1.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n_rows, n_cols = matrix.shape
    k = int(k)
    if k < 1:
        raise ValueError("k must be >= 1")
    k_eff = min(k, n_cols)
    # argsort is stable for kind="stable": equal values keep ascending
    # column order, which is exactly the ID tie-break.
    order = np.argsort(matrix, axis=1, kind="stable")[:, :k_eff]
    values = np.take_along_axis(matrix, order, axis=1)
    indices = order.astype(np.int64)
    indices[~np.isfinite(values)] = -1
    values = np.where(np.isfinite(values), values, INF)
    if k_eff < k:
        pad_idx = np.full((n_rows, k - k_eff), -1, dtype=np.int64)
        pad_val = np.full((n_rows, k - k_eff), INF)
        indices = np.concatenate([indices, pad_idx], axis=1)
        values = np.concatenate([values, pad_val], axis=1)
    return indices, values


def filter_rows(matrix: np.ndarray, k: int) -> np.ndarray:
    """The filtered matrix ``Ā``: keep the k smallest entries per row.

    All other entries are set to ``inf`` (Section 5.4).  The diagonal is
    *not* treated specially: with a zero diagonal it always survives the
    filter (0 is minimal and self-ID ties are irrelevant).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    indices, values = k_smallest_in_rows(matrix, k)
    out = np.full_like(matrix, INF)
    rows = np.repeat(np.arange(matrix.shape[0]), indices.shape[1])
    cols = indices.ravel()
    vals = values.ravel()
    keep = cols >= 0
    out[rows[keep], cols[keep]] = vals[keep]
    return out


@dataclass
class RowSparse:
    """Row-sparse matrix: each row holds at most ``k`` finite entries.

    ``indices[i, j] = -1`` marks a padding slot (value ``inf``).  This is the
    object a node actually stores in the Section 5 algorithm: its local list
    ``M(u)`` of k outgoing edges.
    """

    indices: np.ndarray  # (n, k) int64, -1 = empty
    values: np.ndarray  # (n, k) float64, inf on empty slots
    n_cols: int

    @property
    def n_rows(self) -> int:
        return self.indices.shape[0]

    @property
    def k(self) -> int:
        return self.indices.shape[1]

    def density(self) -> float:
        """Average finite entries per row (the rho of [CDKL21])."""
        return float(np.isfinite(self.values).sum() / max(1, self.n_rows))

    def to_dense(self) -> np.ndarray:
        """Dense matrix with inf in unfilled slots."""
        out = np.full((self.n_rows, self.n_cols), INF)
        rows = np.repeat(np.arange(self.n_rows), self.k)
        cols = self.indices.ravel()
        vals = self.values.ravel()
        keep = cols >= 0
        np.minimum.at(out, (rows[keep], cols[keep]), vals[keep])
        return out


def row_sparse_from_dense(matrix: np.ndarray, k: int) -> RowSparse:
    """Filter a dense matrix into its k-smallest-per-row sparse form."""
    indices, values = k_smallest_in_rows(matrix, k)
    return RowSparse(indices=indices, values=values, n_cols=matrix.shape[1])


def hop_power_row_sparse(
    sparse: RowSparse,
    hops: int,
    include_zero_diagonal: bool = True,
) -> np.ndarray:
    """Exact ``h``-hop distances in the filtered graph: ``Ā^h`` (dense).

    Bellman-Ford over the row-sparse structure: ``h`` rounds of
    ``D[u, :] <- min(D[u, :], min_j (w(u, nbr_j) + D[nbr_j, :]))``.
    With a zero diagonal, the result after ``h`` rounds is the minimum
    length over paths with at most ``h`` edges of ``Ā``.

    Complexity is ``O(h * n * k * n)`` numpy element-ops; for the paper's
    parameter regimes (``k ∈ O(n^{1/h})``) this is far below a dense power.
    """
    if hops < 1:
        raise ValueError("hop bound must be >= 1")
    n = sparse.n_rows
    if sparse.n_cols != n:
        raise ValueError("hop power requires a square matrix")
    dist = sparse.to_dense()
    if include_zero_diagonal:
        np.fill_diagonal(dist, 0.0)
    # Replace -1 padding with self-loops of weight inf (harmless).
    nbr = np.where(sparse.indices >= 0, sparse.indices, np.arange(n)[:, None])
    wgt = np.where(sparse.indices >= 0, sparse.values, INF)
    current = dist
    for _ in range(hops - 1):
        # candidate[u, v] = min_j w(u, nbr_j) + current[nbr_j, v], blocked
        # through the kernel layer's gathered product.
        candidate = minplus_gather(wgt, nbr, current)
        updated = np.minimum(current, candidate)
        if np.array_equal(updated, current):
            break
        current = updated
    return current


def filtered_hop_power(matrix: np.ndarray, hops: int, k: int) -> np.ndarray:
    """``filter_k(A)`` raised to the ``h``-th hop power, dense output.

    This is the quantity ``Ā^h`` from Lemma 5.4/5.5.  By Lemma 5.5 its
    k-smallest row entries equal those of ``A^h`` when ``A`` has a zero
    diagonal; tests verify that equality.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    sparse = row_sparse_from_dense(matrix, k)
    return hop_power_row_sparse(sparse, hops)


def rows_agree_on_k_smallest(
    a: np.ndarray,
    b: np.ndarray,
    k: int,
) -> bool:
    """Whether two matrices have identical k-smallest row entries.

    Used by tests for Lemma 5.5 (``Ā^h`` and ``A^h`` agree on the filtered
    positions, including the ID tie-break).
    """
    ia, va = k_smallest_in_rows(a, k)
    ib, vb = k_smallest_in_rows(b, k)
    values_match = np.allclose(
        np.where(np.isfinite(va), va, -1.0),
        np.where(np.isfinite(vb), vb, -1.0),
    )
    return bool(values_match and np.array_equal(ia, ib))
