"""Tropical (min-plus) semiring algebra, dense and density-priced sparse.

The dense product is served by a registry of pluggable kernels
(:mod:`repro.semiring.kernels`): ``minplus(a, b, kernel=...)`` dispatches
to the reference ``broadcast`` kernel, the cache-``tiled`` kernel, the
``int-repack`` kernel, or a ``numba`` JIT kernel when numba is
installed.  ``use_kernel("tiled")`` / the ``REPRO_MINPLUS_KERNEL``
environment variable fix the choice process-wide.
"""

from .minplus import (
    INF,
    RowSparse,
    filter_rows,
    filtered_hop_power,
    hop_power_row_sparse,
    k_smallest_in_rows,
    row_sparse_from_dense,
    rows_agree_on_k_smallest,
)
from .sparse import SparseProductResult, density, embed, sparse_minplus

# Imported *after* ``.minplus`` on purpose: loading the ``minplus``
# submodule binds the package attribute ``repro.semiring.minplus`` to the
# module object; re-importing from ``.kernels`` afterwards rebinds the
# public name to the dispatcher function (the historical API).
from .kernels import (
    AUTO,
    auto_kernel,
    KERNEL_ENV,
    KernelSpec,
    current_kernel_pin,
    get_kernel,
    iter_kernels,
    kernel_names,
    minplus,
    minplus_gather,
    minplus_power,
    minplus_square,
    register_kernel,
    resolve_kernel,
    use_kernel,
)

# Importing registers the "sharded" kernel in the registry above.
from .sharded import (
    SHARD_DTYPE_ENV,
    SHARD_ENV_VARS,
    SHARD_PLACEMENT_ENV,
    SHARD_TILE_ENV,
    SHARD_WORKERS_ENV,
    ShardPlan,
    current_shard_plan,
    resolve_shard_plan,
    sharded_minplus,
    shutdown_shard_pool,
    use_shard_plan,
)

__all__ = [
    "AUTO",
    "auto_kernel",
    "current_kernel_pin",
    "INF",
    "KERNEL_ENV",
    "KernelSpec",
    "RowSparse",
    "SparseProductResult",
    "density",
    "embed",
    "filter_rows",
    "filtered_hop_power",
    "get_kernel",
    "hop_power_row_sparse",
    "iter_kernels",
    "k_smallest_in_rows",
    "kernel_names",
    "minplus",
    "minplus_gather",
    "minplus_power",
    "minplus_square",
    "register_kernel",
    "resolve_kernel",
    "rows_agree_on_k_smallest",
    "row_sparse_from_dense",
    "SHARD_DTYPE_ENV",
    "SHARD_ENV_VARS",
    "SHARD_PLACEMENT_ENV",
    "SHARD_TILE_ENV",
    "SHARD_WORKERS_ENV",
    "ShardPlan",
    "current_shard_plan",
    "resolve_shard_plan",
    "sharded_minplus",
    "shutdown_shard_pool",
    "sparse_minplus",
    "use_kernel",
    "use_shard_plan",
]
