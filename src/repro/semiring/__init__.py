"""Tropical (min-plus) semiring algebra, dense and density-priced sparse."""

from .minplus import (
    INF,
    RowSparse,
    filter_rows,
    filtered_hop_power,
    hop_power_row_sparse,
    k_smallest_in_rows,
    minplus,
    minplus_power,
    row_sparse_from_dense,
    rows_agree_on_k_smallest,
)
from .sparse import SparseProductResult, density, embed, sparse_minplus

__all__ = [
    "INF",
    "RowSparse",
    "SparseProductResult",
    "density",
    "embed",
    "filter_rows",
    "filtered_hop_power",
    "hop_power_row_sparse",
    "k_smallest_in_rows",
    "minplus",
    "minplus_power",
    "row_sparse_from_dense",
    "rows_agree_on_k_smallest",
    "sparse_minplus",
]
