"""Sharded min-plus kernel: blocked tiles across a persistent process pool.

The scale-out plane for the tropical product.  ``minplus(A, B)`` is
decomposed into ``(tile, tile)`` output tiles; the operands are placed
where worker processes can reach them without pickling matrices —
``multiprocessing.shared_memory`` segments in-core, ``np.memmap`` files
out-of-core — and the tile tasks are scheduled across one persistent
:class:`~concurrent.futures.ProcessPoolExecutor` that survives between
calls (spawning a pool per product would dominate the runtime).

Correctness contract: every output element is ``min_k a[i, k] + b[k, j]``
over float64 sums, and a minimum over identically-computed float64 values
is independent of the order the candidates are visited in.  Any tile /
k-panel decomposition is therefore **bit-identical** to the ``broadcast``
reference kernel.  The float32 policy trades that guarantee for half the
bandwidth and footprint (still *exact* for integer weights below 2^23,
the float32 exact-integer limit) and is opt-in via :class:`ShardPlan`;
results computed under it are flagged in ``Estimate.meta`` by the solver
facade.

A :class:`ShardPlan` travels the same arg > ContextVar > environment
surface as kernel names: pass one to :func:`sharded_minplus`, scope one
with :func:`use_shard_plan` (captured and re-applied by
``ApspSolver.solve_many`` exactly like the kernel pin), or set the
``REPRO_SHARD_*`` environment variables.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
import threading
import uuid
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from .kernels import DEFAULT_MEMORY_BUDGET, INF, register_kernel

#: Environment variables configuring the default :class:`ShardPlan`.
SHARD_WORKERS_ENV = "REPRO_SHARD_WORKERS"
SHARD_TILE_ENV = "REPRO_SHARD_TILE"
SHARD_PLACEMENT_ENV = "REPRO_SHARD_PLACEMENT"
SHARD_DTYPE_ENV = "REPRO_SHARD_DTYPE"

SHARD_ENV_VARS = (
    SHARD_WORKERS_ENV,
    SHARD_TILE_ENV,
    SHARD_PLACEMENT_ENV,
    SHARD_DTYPE_ENV,
)

PLACEMENTS = ("auto", "shared", "memmap", "inline")
DTYPE_POLICIES = ("float64", "float32")

#: Above this combined operand+output size (bytes), ``placement="auto"``
#: leaves RAM and stages the product through memmap files instead of
#: shared-memory segments.
DEFAULT_MEMMAP_THRESHOLD = 256 * 2**20


@dataclass(frozen=True)
class ShardPlan:
    """How one sharded product is decomposed, placed, and scheduled.

    ``tile``
        Edge length of the square output tiles (the unit of scheduling).
    ``workers``
        Process-pool size; ``None`` auto-sizes to ``os.cpu_count()`` and
        ``0`` runs every tile inline in the calling process (no pool —
        the placement machinery is still exercised).
    ``placement``
        Where operands live: ``"shared"`` (shared-memory segments),
        ``"memmap"`` (temp files, out-of-core), ``"inline"`` (plain
        arrays; only meaningful with ``workers=0``), or ``"auto"`` —
        memmap above ``memmap_threshold`` bytes, shared below it.
    ``dtype``
        ``"float64"`` (bit-identical to the broadcast reference) or
        ``"float32"`` (opt-in half-footprint policy; exact only for
        integer values below 2^23).
    """

    tile: int = 256
    workers: Optional[int] = None
    placement: str = "auto"
    dtype: str = "float64"
    memmap_threshold: int = DEFAULT_MEMMAP_THRESHOLD
    memmap_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if int(self.tile) < 1:
            raise ValueError("tile must be >= 1")
        if self.workers is not None and int(self.workers) < 0:
            raise ValueError("workers must be >= 0 (0 = inline)")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )
        if self.dtype not in DTYPE_POLICIES:
            raise ValueError(
                f"dtype must be one of {DTYPE_POLICIES}, got {self.dtype!r}"
            )
        if int(self.memmap_threshold) < 0:
            raise ValueError("memmap_threshold must be >= 0")
        object.__setattr__(self, "tile", int(self.tile))
        if self.workers is not None:
            object.__setattr__(self, "workers", int(self.workers))
        object.__setattr__(self, "memmap_threshold", int(self.memmap_threshold))

    def resolved_workers(self) -> int:
        """The concrete pool size this plan schedules onto."""
        if self.workers is None:
            return max(1, os.cpu_count() or 1)
        return int(self.workers)

    def numpy_dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self.dtype == "float32" else np.float64)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe description (lands in ``Estimate.meta``)."""
        return {
            "tile": int(self.tile),
            "workers": None if self.workers is None else int(self.workers),
            "resolved_workers": self.resolved_workers(),
            "placement": self.placement,
            "dtype": self.dtype,
            "memmap_threshold": int(self.memmap_threshold),
            "memmap_dir": self.memmap_dir,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardPlan":
        known = {"tile", "workers", "placement", "dtype",
                 "memmap_threshold", "memmap_dir"}
        return cls(**{k: v for k, v in dict(data).items() if k in known})

    @classmethod
    def from_env(cls) -> "ShardPlan":
        """A plan from the ``REPRO_SHARD_*`` variables (defaults elsewhere)."""
        kwargs: Dict[str, Any] = {}
        workers = os.environ.get(SHARD_WORKERS_ENV)
        if workers:
            kwargs["workers"] = int(workers)
        tile = os.environ.get(SHARD_TILE_ENV)
        if tile:
            kwargs["tile"] = int(tile)
        placement = os.environ.get(SHARD_PLACEMENT_ENV)
        if placement:
            kwargs["placement"] = placement
        dtype = os.environ.get(SHARD_DTYPE_ENV)
        if dtype:
            kwargs["dtype"] = dtype
        return cls(**kwargs)


# --------------------------------------------------------------------- #
# Ambient plan (context + environment), mirroring the kernel pin
# --------------------------------------------------------------------- #

_ambient_plan: ContextVar[Optional[ShardPlan]] = ContextVar(
    "repro_shard_plan", default=None
)


@contextmanager
def use_shard_plan(plan: Optional[Any]) -> Iterator[None]:
    """Scope a :class:`ShardPlan` for every sharded product inside.

    Accepts a plan, a mapping (``ShardPlan.from_dict``), or ``None``
    (leave env/default resolution in charge).  A ContextVar, so
    concurrent solver threads each see only their own plan — and
    ``ApspSolver.solve_many`` captures/re-applies it in executor workers
    exactly like the kernel pin.
    """
    if plan is not None and not isinstance(plan, ShardPlan):
        plan = ShardPlan.from_dict(plan)
    token = _ambient_plan.set(plan)
    try:
        yield plan
    finally:
        _ambient_plan.reset(token)


def current_shard_plan() -> Optional[ShardPlan]:
    """The explicit ambient plan, if any (context, then environment).

    ``None`` when neither a :func:`use_shard_plan` scope nor any
    ``REPRO_SHARD_*`` variable is set — the sharded kernel then runs on
    plan defaults.  The non-``None`` result is picklable, so
    ``solve_many`` can hand it to process workers.
    """
    plan = _ambient_plan.get()
    if plan is not None:
        return plan
    if any(os.environ.get(name) for name in SHARD_ENV_VARS):
        return ShardPlan.from_env()
    return None


def resolve_shard_plan(plan: Optional[Any] = None) -> ShardPlan:
    """The plan a sharded product will actually run under."""
    if plan is not None:
        return plan if isinstance(plan, ShardPlan) else ShardPlan.from_dict(plan)
    return current_shard_plan() or ShardPlan()


# --------------------------------------------------------------------- #
# Persistent worker pool
# --------------------------------------------------------------------- #

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0
_pool_lock = threading.Lock()


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _pool, _pool_workers
    # Swap under the lock, drain outside it: shutdown(wait=True) blocks
    # until in-flight tiles finish, and holding ``_pool_lock`` through
    # that drain would stall every concurrent ``_get_pool`` caller (and
    # deadlock if a drain ever depended on another pool acquisition).
    stale: Optional[ProcessPoolExecutor] = None
    with _pool_lock:
        if _pool is None or _pool_workers != workers:
            stale = _pool
            _pool = ProcessPoolExecutor(max_workers=workers)
            _pool_workers = workers
        pool = _pool
    if stale is not None:
        stale.shutdown(wait=True, cancel_futures=True)
    return pool


def shutdown_shard_pool() -> None:
    """Tear down the persistent tile pool (idempotent; re-created lazily)."""
    global _pool, _pool_workers
    with _pool_lock:
        stale = _pool
        _pool = None
        _pool_workers = 0
    if stale is not None:
        stale.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_shard_pool)


# --------------------------------------------------------------------- #
# Tile execution (runs in workers and inline)
# --------------------------------------------------------------------- #


def _minplus_tile(
    a_rows: np.ndarray,
    b_cols: np.ndarray,
    out_tile: np.ndarray,
    memory_budget: int,
) -> None:
    """One output tile: ``out[i, j] = min_k a_rows[i, k] + b_cols[k, j]``.

    The inner k-dimension is swept in panels sized so the broadcast
    temporary stays inside ``memory_budget`` — with memmap operands this
    is what bounds the resident working set per task.
    """
    rows, k = a_rows.shape
    cols = b_cols.shape[1]
    itemsize = a_rows.dtype.itemsize
    panel = int(max(1, min(k, memory_budget // max(1, itemsize * rows * cols))))
    acc = np.full((rows, cols), INF, dtype=a_rows.dtype)
    for k0 in range(0, k, panel):
        k1 = min(k0 + panel, k)
        segment = np.ascontiguousarray(b_cols[k0:k1])
        sums = a_rows[:, k0:k1, None] + segment[None, :, :]
        np.minimum(acc, sums.min(axis=1), out=acc)
    out_tile[...] = acc


def _attach_shm(name: str) -> shared_memory.SharedMemory:
    # Forked pool workers share the creator's resource-tracker process,
    # whose per-type cache is a *set*: the attach's re-registration
    # deduplicates against the creator's entry, and the creator's
    # ``unlink()`` retires it exactly once.  No tracker surgery needed —
    # a worker-side unregister would instead delete the creator's entry.
    return shared_memory.SharedMemory(name=name)


def _tile_worker(item: Tuple[Dict[str, Any], Tuple[int, int, int, int]]) -> None:
    """Compute one tile against shared-memory or memmap operands."""
    spec, (i0, i1, j0, j1) = item
    dtype = np.dtype(spec["dtype"])
    budget = int(spec["budget"])
    a_shape = tuple(spec["a_shape"])
    b_shape = tuple(spec["b_shape"])
    out_shape = tuple(spec["out_shape"])
    if spec["kind"] == "shm":
        seg_a = _attach_shm(spec["a"])
        seg_b = _attach_shm(spec["b"])
        seg_out = _attach_shm(spec["out"])
        try:
            a = np.ndarray(a_shape, dtype=dtype, buffer=seg_a.buf)
            b = np.ndarray(b_shape, dtype=dtype, buffer=seg_b.buf)
            out = np.ndarray(out_shape, dtype=dtype, buffer=seg_out.buf)
            _minplus_tile(a[i0:i1], b[:, j0:j1], out[i0:i1, j0:j1], budget)
        finally:
            a = b = out = None
            for segment in (seg_a, seg_b, seg_out):
                try:
                    segment.close()
                except BufferError:  # pragma: no cover - defensive
                    pass
    else:
        a = np.memmap(spec["a"], dtype=dtype, mode="r", shape=a_shape)
        b = np.memmap(spec["b"], dtype=dtype, mode="r", shape=b_shape)
        out = np.memmap(spec["out"], dtype=dtype, mode="r+", shape=out_shape)
        _minplus_tile(a[i0:i1], b[:, j0:j1], out[i0:i1, j0:j1], budget)
        out.flush()


def _run_tasks(
    spec: Dict[str, Any],
    tasks: List[Tuple[int, int, int, int]],
    workers: int,
) -> None:
    items = [(spec, coords) for coords in tasks]
    if workers <= 0:
        for item in items:
            _tile_worker(item)
        return
    pool = _get_pool(workers)
    try:
        chunksize = max(1, len(items) // (workers * 4))
        for _ in pool.map(_tile_worker, items, chunksize=chunksize):
            pass
    except BrokenProcessPool:
        shutdown_shard_pool()
        raise


# --------------------------------------------------------------------- #
# The sharded product
# --------------------------------------------------------------------- #


def _resolve_placement(plan: ShardPlan, total_bytes: int, workers: int) -> str:
    placement = plan.placement
    if placement == "auto":
        if total_bytes >= plan.memmap_threshold:
            return "memmap"
        return "inline" if workers == 0 else "shared"
    if placement == "inline" and workers > 0:
        # Pool workers cannot see plain caller arrays; promote to shared.
        return "shared"
    return placement


def _tile_grid(n: int, m: int, tile: int) -> List[Tuple[int, int, int, int]]:
    return [
        (i0, min(i0 + tile, n), j0, min(j0 + tile, m))
        for i0 in range(0, n, tile)
        for j0 in range(0, m, tile)
    ]


def _collect(
    computed: np.ndarray, out: Optional[np.ndarray]
) -> np.ndarray:
    """Copy the (possibly float32, possibly shm/memmap-backed) result out."""
    if out is not None:
        np.copyto(out, computed, casting="same_kind")
        return out
    if computed.dtype == np.float64:
        return np.array(computed)
    return computed.astype(np.float64)


def sharded_minplus(
    a: np.ndarray,
    b: np.ndarray,
    *,
    plan: Optional[Any] = None,
    memory_budget: Optional[int] = None,
    out: Optional[np.ndarray] = None,
    return_memmap: bool = False,
) -> np.ndarray:
    """Tile-sharded min-plus product under a :class:`ShardPlan`.

    Returns a float64 array (upcast from float32 when the plan's dtype
    policy is ``"float32"``).  ``return_memmap=True`` with memmap
    placement instead hands back the output ``np.memmap`` itself (in the
    plan's compute dtype, never copied into RAM); its backing directory
    is removed when the array is garbage-collected.
    """
    plan = resolve_shard_plan(plan)
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError("inner dimensions must agree")
    n, k = a.shape
    m = b.shape[1]
    if memory_budget is None:
        memory_budget = int(
            os.environ.get("REPRO_MINPLUS_BUDGET", DEFAULT_MEMORY_BUDGET)
        )
    if out is not None:
        out = np.asarray(out)
        if out.shape != (n, m):
            raise ValueError(f"out must be ({n}, {m}); got {out.shape}")
        if out.dtype != np.float64 or not out.flags.writeable:
            raise ValueError("out must be a writable float64 array")
    if k == 0:
        if out is not None:
            out.fill(INF)
            return out
        return np.full((n, m), INF)
    if n == 0 or m == 0:
        return out if out is not None else np.empty((n, m), dtype=np.float64)

    dtype = plan.numpy_dtype()
    a_cast = np.ascontiguousarray(a, dtype=dtype)
    b_cast = np.ascontiguousarray(b, dtype=dtype)
    workers = plan.resolved_workers()
    total_bytes = a_cast.nbytes + b_cast.nbytes + n * m * dtype.itemsize
    placement = _resolve_placement(plan, total_bytes, workers)
    tasks = _tile_grid(n, m, plan.tile)

    if placement == "inline":
        local = np.empty((n, m), dtype=dtype)
        for i0, i1, j0, j1 in tasks:
            _minplus_tile(
                a_cast[i0:i1], b_cast[:, j0:j1], local[i0:i1, j0:j1],
                memory_budget,
            )
        return _collect(local, out)

    if placement == "shared":
        return _shared_product(
            a_cast, b_cast, tasks, workers, memory_budget, out
        )
    return _memmap_product(
        a_cast, b_cast, tasks, workers, memory_budget, out, plan,
        return_memmap,
    )


def _shared_product(
    a_cast: np.ndarray,
    b_cast: np.ndarray,
    tasks: List[Tuple[int, int, int, int]],
    workers: int,
    memory_budget: int,
    out: Optional[np.ndarray],
) -> np.ndarray:
    n, k = a_cast.shape
    m = b_cast.shape[1]
    dtype = a_cast.dtype
    segments: List[shared_memory.SharedMemory] = []
    a_view = b_view = out_view = None
    try:
        names = []
        for nbytes in (a_cast.nbytes, b_cast.nbytes, n * m * dtype.itemsize):
            segment = shared_memory.SharedMemory(
                create=True,
                size=max(1, int(nbytes)),
                name=f"repro-shard-{uuid.uuid4().hex[:16]}",
            )
            segments.append(segment)
            names.append(segment.name)
        a_view = np.ndarray((n, k), dtype=dtype, buffer=segments[0].buf)
        b_view = np.ndarray((k, m), dtype=dtype, buffer=segments[1].buf)
        out_view = np.ndarray((n, m), dtype=dtype, buffer=segments[2].buf)
        a_view[...] = a_cast
        b_view[...] = b_cast
        spec = {
            "kind": "shm",
            "dtype": dtype.str,
            "budget": int(memory_budget),
            "a": names[0],
            "b": names[1],
            "out": names[2],
            "a_shape": (n, k),
            "b_shape": (k, m),
            "out_shape": (n, m),
        }
        _run_tasks(spec, tasks, workers)
        return _collect(out_view, out)
    finally:
        a_view = b_view = out_view = None
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - defensive
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - defensive
                pass


def _memmap_product(
    a_cast: np.ndarray,
    b_cast: np.ndarray,
    tasks: List[Tuple[int, int, int, int]],
    workers: int,
    memory_budget: int,
    out: Optional[np.ndarray],
    plan: ShardPlan,
    return_memmap: bool,
) -> np.ndarray:
    n, k = a_cast.shape
    m = b_cast.shape[1]
    dtype = a_cast.dtype
    tmpdir = tempfile.mkdtemp(prefix="repro-shard-", dir=plan.memmap_dir)
    handed_over = False
    try:
        paths = {
            name: os.path.join(tmpdir, f"{name}.bin")
            for name in ("a", "b", "out")
        }
        for path, source, shape in (
            (paths["a"], a_cast, (n, k)),
            (paths["b"], b_cast, (k, m)),
        ):
            staged = np.memmap(path, dtype=dtype, mode="w+", shape=shape)
            staged[...] = source
            staged.flush()
            del staged
        out_mm = np.memmap(paths["out"], dtype=dtype, mode="w+", shape=(n, m))
        out_mm.flush()
        del out_mm
        spec = {
            "kind": "mmap",
            "dtype": dtype.str,
            "budget": int(memory_budget),
            "a": paths["a"],
            "b": paths["b"],
            "out": paths["out"],
            "a_shape": (n, k),
            "b_shape": (k, m),
            "out_shape": (n, m),
        }
        _run_tasks(spec, tasks, workers)
        result_mm = np.memmap(paths["out"], dtype=dtype, mode="r+", shape=(n, m))
        if return_memmap and out is None:
            # The caller keeps the output file; the input staging files go
            # now, the directory goes when the array does.
            os.remove(paths["a"])
            os.remove(paths["b"])
            weakref.finalize(result_mm, shutil.rmtree, tmpdir, ignore_errors=True)
            handed_over = True
            return result_mm
        result = _collect(result_mm, out)
        del result_mm
        return result
    finally:
        if not handed_over:
            shutil.rmtree(tmpdir, ignore_errors=True)


@register_kernel(
    "sharded",
    summary="blocked tiles over a persistent process pool "
    "(shared-memory in-core, memmap out-of-core; ShardPlan-configured)",
)
def _kernel_sharded(
    a: np.ndarray,
    b: np.ndarray,
    block: Optional[int],
    memory_budget: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    return sharded_minplus(a, b, memory_budget=memory_budget, out=out)


__all__ = [
    "DEFAULT_MEMMAP_THRESHOLD",
    "DTYPE_POLICIES",
    "PLACEMENTS",
    "SHARD_DTYPE_ENV",
    "SHARD_ENV_VARS",
    "SHARD_PLACEMENT_ENV",
    "SHARD_TILE_ENV",
    "SHARD_WORKERS_ENV",
    "ShardPlan",
    "current_shard_plan",
    "resolve_shard_plan",
    "sharded_minplus",
    "shutdown_shard_pool",
    "use_shard_plan",
]
