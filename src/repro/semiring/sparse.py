"""Density-aware sparse min-plus products ([CDKL21, Theorem 8]).

Theorem 6.1 of the paper (imported from [CDKL21]) multiplies two matrices
over the min-plus semiring in ``O((rho_S rho_T rho_ST)^{1/3} / n^{2/3} + 1)``
rounds, where ``rho_M`` is the average number of finite entries per row.
The reproduction executes the product with numpy and charges that formula on
the round ledger from the *measured* densities — so the skeleton-graph
construction (Lemma 6.2) is priced exactly as the paper prices it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cclique.accounting import RoundLedger
from .kernels import INF, minplus


def density(matrix: np.ndarray) -> float:
    """Average finite entries per row (``rho`` in [CDKL21])."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("density is defined for 2-D matrices")
    return float(np.isfinite(matrix).sum() / max(1, matrix.shape[0]))


@dataclass
class SparseProductResult:
    """Product matrix plus the density triple that priced it."""

    product: np.ndarray
    rho_s: float
    rho_t: float
    rho_st: float
    rounds_charged: int


def sparse_minplus(
    s: np.ndarray,
    t: np.ndarray,
    ledger: Optional[RoundLedger] = None,
    rho_st_bound: Optional[float] = None,
    clique_n: Optional[int] = None,
    detail: str = "sparse min-plus product [CDKL21, Thm 8]",
    kernel: Optional[str] = None,
) -> SparseProductResult:
    """Min-plus product priced by the [CDKL21] sparse-matmul formula.

    Parameters
    ----------
    s, t:
        Factor matrices (``inf`` = semiring zero).  Shapes ``(a, b)`` and
        ``(b, c)``; the clique dimension used in the round formula is the
        ledger's ``n`` (the paper embeds smaller matrices into the clique).
    ledger:
        Ledger to charge; ``None`` executes without accounting (pure math).
    rho_st_bound:
        Optional a-priori bound on the product density.  The paper requires
        ``rho_ST`` known beforehand; where the caller has an analytic bound
        (e.g. ``|S|^2 / n`` in Lemma 6.2) passing it reproduces the paper's
        pricing.  Defaults to the measured product density.
    clique_n:
        Dimension over which densities are averaged.  Rectangular factors
        (e.g. the ``|S| x n`` skeleton matrices) are conceptually embedded
        into ``n x n`` clique matrices; passing the clique size computes
        ``rho`` as total finite entries over ``clique_n`` rows, matching the
        paper's accounting.  Defaults to each factor's own row count.
    kernel:
        Explicit min-plus kernel name (see :mod:`repro.semiring.kernels`);
        ``None`` defers to the ambient/auto selection.
    """
    product = minplus(s, t, kernel=kernel)
    if clique_n is not None:
        rho_s = float(np.isfinite(s).sum() / max(1, clique_n))
        rho_t = float(np.isfinite(t).sum() / max(1, clique_n))
        rho_prod = float(np.isfinite(product).sum() / max(1, clique_n))
    else:
        rho_s = density(s)
        rho_t = density(t)
        rho_prod = density(product)
    rho_st = float(rho_st_bound) if rho_st_bound is not None else rho_prod
    rounds = 0
    if ledger is not None:
        rounds = ledger.charge_sparse_matmul(rho_s, rho_t, rho_st, detail=detail)
    return SparseProductResult(
        product=product,
        rho_s=rho_s,
        rho_t=rho_t,
        rho_st=rho_st,
        rounds_charged=rounds,
    )


def embed(matrix: np.ndarray, n: int, fill: float = INF) -> np.ndarray:
    """Embed a smaller matrix into the top-left corner of an ``n x n`` one.

    The Congested Clique always works with ``n x n`` matrices; algorithms on
    a skeleton graph with ``|S| < n`` nodes embed their matrices this way
    (rows/columns beyond ``|S|`` are semiring-zero).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    rows, cols = matrix.shape
    if rows > n or cols > n:
        raise ValueError("matrix larger than the clique")
    out = np.full((n, n), fill, dtype=np.float64)
    out[:rows, :cols] = matrix
    return out
