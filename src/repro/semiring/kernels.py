"""Pluggable min-plus (tropical) matmul kernels — the repo's hot path.

Every algorithm in the reproduction bottoms out in a dense min-plus
product: filtered powers (Section 5), skeleton products (Lemma 6.2 via
[CDKL21]), hopset limits, the exact baseline.  This module is the single
home of that product: a registry of interchangeable kernel
implementations behind one :func:`minplus` entry point, mirroring the
variant registry of :mod:`repro.core.registry`.

Registered kernels (all bit-identical on the same inputs):

``broadcast``
    The original reference: row-blocked numpy broadcasting with
    ``(block, k, m)`` temporaries.  Fastest below ``n ~ 200`` where the
    temporary fits in cache anyway.
``tiled``
    Two-axis (row x column) cache-tiled product.  Temporaries are bounded
    by a memory budget (``O(block^2 * k)`` elements instead of
    ``O(block * k * m)``), column tiles are copied contiguous, and the
    scratch buffer is reused across tiles.  ~2.5-3x the reference at
    ``n = 512``.
``int-repack``
    Detects integer-valued inputs, maps ``inf`` to a safe sentinel, and
    runs the tiled product in float32 (half the memory bandwidth) or
    int64, whichever is exact for the value range; falls back to
    ``tiled`` for non-integer or oversized inputs.  Bit-identical to the
    float64 reference because every sum stays exactly representable.
``numba``
    A JIT-compiled scalar triple loop, registered **only** when numba is
    importable (never a hard dependency) and compiled lazily on first
    use.

Selection precedence in :func:`minplus`:

1. the explicit ``kernel=...`` argument,
2. the ambient :func:`use_kernel` context (how ``SolverConfig.kernel``
   reaches the hot path),
3. the ``REPRO_MINPLUS_KERNEL`` environment variable,
4. :func:`resolve_kernel` auto-selection: ``numba`` when available for
   large inputs, else ``int-repack`` for integer-valued matrices, else
   ``tiled`` for large inputs, else ``broadcast``.

This module is a *leaf*: it imports nothing from the rest of the package
(numpy only), so both :mod:`repro.semiring` and :mod:`repro.graphs` may
depend on it without cycles.
"""

from __future__ import annotations

import importlib.util
import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

INF = np.inf

#: Environment variable overriding kernel auto-selection (lowest-priority
#: explicit choice; see module docstring for the full precedence).
KERNEL_ENV = "REPRO_MINPLUS_KERNEL"

#: Name accepted everywhere a kernel name is accepted: defer to auto-selection.
AUTO = "auto"

#: Default temporary-buffer budget (bytes) for the tiled kernels.  Sized so
#: the scratch tile stays L2/L3-resident; override per call or via
#: ``REPRO_MINPLUS_BUDGET``.
DEFAULT_MEMORY_BUDGET = 32 * 2**20

#: Smallest max-dimension at which tiling beats plain broadcasting (below
#: this the broadcast temporary is cache-resident already).
TILED_MIN_DIM = 192

#: Integer magnitudes up to this bound survive a float32 round-trip exactly
#: (sums of two entries stay <= 2^24, the float32 exact-integer limit).
_FLOAT32_EXACT_MAX = float(2**23)

#: Integer magnitudes up to this bound keep float64 *sums* exact (< 2^52),
#: so the int64 path stays bit-identical to the float64 reference.
_INT_EXACT_MAX = float(2**51)

#: Sentinel standing in for ``inf`` on the int64 path.  Any sum touching a
#: sentinel lands strictly above ``_INT_INF_THRESHOLD``; any finite sum
#: stays strictly below it (given ``_INT_EXACT_MAX``); no overflow occurs.
_INT_SENTINEL = np.int64(2**60)
_INT_INF_THRESHOLD = np.int64(2**59)


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class KernelSpec:
    """One registered min-plus product implementation.

    ``func(a, b, block, memory_budget, out) -> result`` receives
    validated float64 arrays with agreeing inner dimensions and must
    return the exact tropical product (bit-identical to the reference
    kernel).  ``out`` is an optional preallocated float64 destination
    (never aliasing the operands); a kernel may write into it and return
    it, or ignore it and return a fresh array — the dispatcher copies
    into ``out`` when the kernel didn't.
    """

    name: str
    func: Callable[..., np.ndarray]
    summary: str
    requires: str = ""  # soft dependency note ("numba"), purely informational


_KERNELS: Dict[str, KernelSpec] = {}


def register_kernel(
    name: str, *, summary: str, requires: str = ""
) -> Callable[[Callable], Callable]:
    """Decorator registering one kernel implementation under ``name``."""

    def decorator(func: Callable) -> Callable:
        if name in _KERNELS or name == AUTO:
            raise ValueError(f"kernel {name!r} is already registered")
        _KERNELS[name] = KernelSpec(
            name=name, func=func, summary=summary, requires=requires
        )
        return func

    return decorator


def get_kernel(name: str) -> KernelSpec:
    """Look up one registered kernel; ``ValueError`` on unknown names."""
    try:
        return _KERNELS[name]
    except KeyError:
        raise ValueError(
            f"unknown min-plus kernel {name!r}; "
            f"registered: {', '.join(_KERNELS)} (or {AUTO!r})"
        ) from None


def kernel_names() -> Tuple[str, ...]:
    """All registered kernel names, in registration order."""
    return tuple(_KERNELS)


def iter_kernels() -> Iterator[KernelSpec]:
    """Iterate the registered specs in registration order."""
    return iter(tuple(_KERNELS.values()))


# --------------------------------------------------------------------- #
# Ambient kernel choice (context + environment)
# --------------------------------------------------------------------- #

_ambient_kernel: ContextVar[Optional[str]] = ContextVar(
    "repro_minplus_kernel", default=None
)


@contextmanager
def use_kernel(name: Optional[str]) -> Iterator[None]:
    """Context manager fixing the kernel for every :func:`minplus` inside.

    ``None`` and ``"auto"`` leave auto-selection in charge.  The setting
    is a :class:`~contextvars.ContextVar`, so concurrent solver threads
    (``ApspSolver.solve_many``) each see only their own choice.
    """
    if name is not None and name != AUTO:
        get_kernel(name)  # fail fast on unknown names
    token = _ambient_kernel.set(name)
    try:
        yield
    finally:
        _ambient_kernel.reset(token)


def current_kernel_pin() -> Optional[str]:
    """The explicit ambient kernel pin, if any.

    Resolves the non-input-dependent part of the :func:`resolve_kernel`
    precedence — the :func:`use_kernel` context, then the
    ``REPRO_MINPLUS_KERNEL`` environment variable — and returns the pinned
    kernel's canonical name, or ``None`` when auto-selection is in charge.
    ``ApspSolver.solve_many`` captures this in the submitting process and
    re-applies it inside executor workers (thread contexts and spawned
    processes do not inherit the caller's :class:`~contextvars.ContextVar`).
    """
    for choice in (_ambient_kernel.get(), os.environ.get(KERNEL_ENV)):
        if choice is not None and choice != "" and choice != AUTO:
            return get_kernel(choice).name
    return None


def _is_integral(matrix: np.ndarray) -> bool:
    finite = np.isfinite(matrix)
    return bool(np.all(np.floor(matrix[finite]) == matrix[finite]))


def _max_abs_finite(matrix: np.ndarray) -> float:
    finite = np.isfinite(matrix)
    if not finite.any():
        return 0.0
    return float(np.abs(matrix[finite]).max())


def auto_kernel(a: np.ndarray, b: np.ndarray) -> str:
    """The kernel auto-selection picks for these inputs, ignoring any
    explicit argument/context/environment pin.

    Thresholds were measured on the repo's benchmark harness
    (benchmarks/bench_kernels.py); see DESIGN.md "Kernel layer".
    """
    largest = max(a.shape[0], a.shape[1], b.shape[1])
    if "numba" in _KERNELS and largest >= 128:
        return "numba"
    if _is_integral(a) and _is_integral(b):
        return "int-repack"
    if largest >= TILED_MIN_DIM:
        return "tiled"
    return "broadcast"


def resolve_kernel(
    a: np.ndarray, b: np.ndarray, kernel: Optional[str] = None
) -> str:
    """The kernel name :func:`minplus` will run for these inputs.

    Applies the documented precedence (argument > :func:`use_kernel`
    context > ``REPRO_MINPLUS_KERNEL`` > :func:`auto_kernel` selection).
    Public so callers and tests can observe selection without timing it.
    """
    for choice in (kernel, _ambient_kernel.get(), os.environ.get(KERNEL_ENV)):
        if choice is not None and choice != "" and choice != AUTO:
            return get_kernel(choice).name
    return auto_kernel(a, b)


# --------------------------------------------------------------------- #
# The entry point
# --------------------------------------------------------------------- #


def _validate_out(
    out: np.ndarray, shape: Tuple[int, int], a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Check a caller-provided destination buffer for the dispatcher."""
    out = np.asarray(out)
    if out.shape != shape:
        raise ValueError(f"out must have shape {shape}; got {out.shape}")
    if out.dtype != np.float64:
        raise ValueError(f"out must be float64; got {out.dtype}")
    if not out.flags.writeable:
        raise ValueError("out must be writable")
    if np.may_share_memory(out, a) or np.may_share_memory(out, b):
        raise ValueError("out must not share memory with the operands")
    return out


def minplus(
    a: np.ndarray,
    b: np.ndarray,
    block: Optional[int] = None,
    *,
    kernel: Optional[str] = None,
    memory_budget: Optional[int] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Dense min-plus product ``(A * B)[i, j] = min_k (A[i,k] + B[k,j])``.

    The one dispatcher every dense tropical product in the repo routes
    through.  All kernels return bit-identical float64 results; see the
    module docstring for the registry and the selection precedence.

    Parameters
    ----------
    a, b:
        Factor matrices (``inf`` = semiring zero).  Any real dtype;
        computation is exact float64 semantics.
    block:
        Row-block hint for the ``broadcast`` kernel (legacy knob, default
        64).  Tiled kernels size their tiles from ``memory_budget``.
    kernel:
        Explicit kernel name (highest precedence), ``"auto"``/``None``
        for ambient/env/auto selection.
    memory_budget:
        Scratch-buffer budget in bytes for the tiled kernels; defaults to
        ``REPRO_MINPLUS_BUDGET`` or :data:`DEFAULT_MEMORY_BUDGET`.
    out:
        Optional preallocated float64 destination of shape
        ``(a.shape[0], b.shape[1])``, not aliasing the operands.  The
        result lands there (and is returned); repeated products —
        ``minplus_power``'s squaring loop — can then ping-pong two
        buffers instead of allocating an ``(n, n)`` temporary per step.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError("inner dimensions must agree")
    if out is not None:
        out = _validate_out(out, (a.shape[0], b.shape[1]), a, b)
    if a.shape[1] == 0:
        # Empty inner dimension: the min over an empty set is the
        # semiring zero (inf) everywhere.
        if out is not None:
            out.fill(INF)
            return out
        return np.full((a.shape[0], b.shape[1]), INF)
    if a.shape[0] == 0 or b.shape[1] == 0:
        if out is not None:
            return out
        return np.empty((a.shape[0], b.shape[1]), dtype=np.float64)
    if memory_budget is None:
        memory_budget = int(
            os.environ.get("REPRO_MINPLUS_BUDGET", DEFAULT_MEMORY_BUDGET)
        )
    name = resolve_kernel(a, b, kernel)
    if name == "int-repack" and _was_auto_selected(kernel):
        # Auto-selection just proved integrality; skip the kernel's own
        # O(n^2) recheck on this (hot) path.
        result = _int_repack_product(a, b, memory_budget, integral=True, out=out)
    else:
        result = get_kernel(name).func(a, b, block, memory_budget, out)
    if out is not None and result is not out:
        np.copyto(out, result)
        return out
    return result


def _was_auto_selected(kernel: Optional[str]) -> bool:
    """Whether :func:`resolve_kernel` fell through to auto-selection."""
    for choice in (kernel, _ambient_kernel.get(), os.environ.get(KERNEL_ENV)):
        if choice is not None and choice != "" and choice != AUTO:
            return False
    return True


def minplus_square(
    matrix: np.ndarray,
    block: Optional[int] = None,
    *,
    kernel: Optional[str] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One min-plus squaring ``A -> A (*) A``."""
    return minplus(matrix, matrix, block=block, kernel=kernel, out=out)


def minplus_power(
    matrix: np.ndarray,
    exponent: int,
    block: Optional[int] = None,
    *,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Exact min-plus power ``A^h`` by binary exponentiation.

    Requires a zero diagonal so that ``A^h`` equals "minimum length over
    paths with at most h hops" (Section 2.1).  Square-and-multiply makes
    the exponent exact for every ``h`` (plain repeated squaring would
    overshoot to the next power of two).

    Memory discipline: each squaring and each accumulator multiply
    ping-pongs a pair of preallocated buffers through ``minplus(out=...)``
    — at most four ``(n, n)`` arrays live for the whole loop, where the
    naive form allocated a fresh product every round.
    """
    if exponent < 1:
        raise ValueError("exponent must be >= 1")
    matrix = np.asarray(matrix, dtype=np.float64)
    if np.any(np.diag(matrix) != 0):
        raise ValueError("matrix must have a zero diagonal")
    accumulator: Optional[np.ndarray] = None
    acc_spare: Optional[np.ndarray] = None
    base = np.array(matrix)
    base_spare: Optional[np.ndarray] = None
    remaining = int(exponent)
    while remaining > 0:
        if remaining & 1:
            if accumulator is None:
                accumulator = np.array(base)
            else:
                if acc_spare is None:
                    acc_spare = np.empty_like(base)
                minplus(accumulator, base, block=block, kernel=kernel,
                        out=acc_spare)
                accumulator, acc_spare = acc_spare, accumulator
        remaining >>= 1
        if remaining:
            if base_spare is None:
                base_spare = np.empty_like(base)
            minplus(base, base, block=block, kernel=kernel, out=base_spare)
            base, base_spare = base_spare, base
    assert accumulator is not None
    return accumulator


def minplus_gather(
    weights: np.ndarray,
    indices: np.ndarray,
    dense: np.ndarray,
    memory_budget: Optional[int] = None,
) -> np.ndarray:
    """Row-sparse min-plus step: ``out[u, v] = min_j w[u,j] + D[idx[u,j], v]``.

    The inner product of one Bellman-Ford round over a row-sparse matrix
    (``hop_power_row_sparse``): each row ``u`` relaxes through its ``k``
    stored neighbours ``indices[u, :]``.  Row-blocked so the gathered
    temporary stays within the memory budget.  ``indices`` must be valid
    row indices into ``dense`` (callers map padding to a self-loop with
    ``inf`` weight).
    """
    weights = np.asarray(weights, dtype=np.float64)
    indices = np.asarray(indices)
    n, k = weights.shape
    m = dense.shape[1]
    if k == 0:
        return np.full((n, m), INF)
    if memory_budget is None:
        memory_budget = int(
            os.environ.get("REPRO_MINPLUS_BUDGET", DEFAULT_MEMORY_BUDGET)
        )
    blk = max(1, min(n, memory_budget // (8 * k * max(1, m))))
    out = np.empty((n, m))
    for start in range(0, n, blk):
        stop = min(start + blk, n)
        # gathered[u, j, v] = dense[indices[u, j], v]
        gathered = dense[indices[start:stop], :]
        out[start:stop] = (weights[start:stop, :, None] + gathered).min(axis=1)
    return out


# --------------------------------------------------------------------- #
# Kernel implementations
# --------------------------------------------------------------------- #


@register_kernel(
    "broadcast",
    summary="row-blocked numpy broadcasting (reference; best for small n)",
)
def _kernel_broadcast(
    a: np.ndarray,
    b: np.ndarray,
    block: Optional[int],
    memory_budget: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    block = 64 if block is None else max(1, int(block))
    if out is None:
        out = np.empty((a.shape[0], b.shape[1]), dtype=np.float64)
    for start in range(0, a.shape[0], block):
        stop = min(start + block, a.shape[0])
        out[start:stop] = (a[start:stop, :, None] + b[None, :, :]).min(axis=1)
    return out


def _tiled_product(
    a: np.ndarray,
    b: np.ndarray,
    memory_budget: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Two-axis tiled product over any dtype with exact add/min semantics.

    Shared by the ``tiled`` kernel (float64) and the ``int-repack`` paths
    (float32 / int64): column tiles of ``b`` are copied contiguous once
    per tile, and one scratch buffer of ``bi * k * bj`` elements is
    reused for the broadcast sums — ``O(block^2 * k)`` memory instead of
    the reference's ``O(block * k * m)``.
    """
    n, k = a.shape
    m = b.shape[1]
    itemsize = a.dtype.itemsize
    bj = min(m, 256)
    bi = max(1, min(n, memory_budget // (itemsize * max(1, k) * bj)))
    if out is None or out.dtype != a.dtype:
        out = np.empty((n, m), dtype=a.dtype)
    scratch = np.empty((bi, k, bj), dtype=a.dtype)
    for col_start in range(0, m, bj):
        col_stop = min(col_start + bj, m)
        col_tile = np.ascontiguousarray(b[:, col_start:col_stop])
        width = col_stop - col_start
        for row_start in range(0, n, bi):
            row_stop = min(row_start + bi, n)
            sums = np.add(
                a[row_start:row_stop, :, None],
                col_tile[None, :, :],
                out=scratch[: row_stop - row_start, :, :width],
            )
            out[row_start:row_stop, col_start:col_stop] = sums.min(axis=1)
    return out


@register_kernel(
    "tiled",
    summary="two-axis cache-tiled product, scratch bounded by a memory budget",
)
def _kernel_tiled(
    a: np.ndarray,
    b: np.ndarray,
    block: Optional[int],
    memory_budget: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    return _tiled_product(a, b, memory_budget, out=out)


@register_kernel(
    "int-repack",
    summary="integer inputs repacked to float32/int64 (inf -> sentinel); "
    "falls back to tiled otherwise",
)
def _kernel_int_repack(
    a: np.ndarray,
    b: np.ndarray,
    block: Optional[int],
    memory_budget: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    return _int_repack_product(a, b, memory_budget, integral=None, out=out)


def _int_repack_product(
    a: np.ndarray,
    b: np.ndarray,
    memory_budget: int,
    integral: Optional[bool],
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """int-repack body; ``integral=True`` skips the recheck when the
    dispatcher's auto-selection already classified both inputs."""
    if integral is None:
        integral = _is_integral(a) and _is_integral(b)
    if not integral:
        return _tiled_product(a, b, memory_budget, out=out)
    largest = max(_max_abs_finite(a), _max_abs_finite(b))
    if largest <= _FLOAT32_EXACT_MAX:
        # float32 halves memory bandwidth; inf needs no sentinel and all
        # sums stay <= 2^24, the float32 exact-integer limit.
        out32 = _tiled_product(
            a.astype(np.float32), b.astype(np.float32), memory_budget
        )
        if out is not None:
            np.copyto(out, out32)
            return out
        return out32.astype(np.float64)
    if largest < _INT_EXACT_MAX:
        a64 = np.where(np.isfinite(a), a, float(_INT_SENTINEL)).astype(np.int64)
        b64 = np.where(np.isfinite(b), b, float(_INT_SENTINEL)).astype(np.int64)
        out64 = _tiled_product(a64, b64, memory_budget)
        if out is None:
            out = out64.astype(np.float64)
        else:
            np.copyto(out, out64, casting="unsafe")
        out[out64 >= _INT_INF_THRESHOLD] = INF
        return out
    # Values large enough that float64 addition itself rounds: only the
    # reference semantics are well-defined, so stay in float64.
    return _tiled_product(a, b, memory_budget, out=out)


_numba_impl: Optional[Callable] = None


def _get_numba_impl() -> Callable:
    """Compile the numba kernel on first use (import deferred until then)."""
    global _numba_impl
    if _numba_impl is None:
        import numba  # soft dependency; registration is gated on find_spec

        @numba.njit(parallel=True, cache=True)
        def _numba_minplus(a: np.ndarray, b: np.ndarray) -> np.ndarray:
            n, k = a.shape
            m = b.shape[1]
            out = np.full((n, m), np.inf)
            for i in numba.prange(n):
                for l in range(k):
                    w = a[i, l]
                    if w == np.inf:
                        continue
                    row = b[l]
                    for j in range(m):
                        s = w + row[j]
                        if s < out[i, j]:
                            out[i, j] = s
            return out

        _numba_impl = _numba_minplus
    return _numba_impl


if importlib.util.find_spec("numba") is not None:  # pragma: no cover

    @register_kernel(
        "numba",
        summary="JIT-compiled parallel triple loop (registered when numba "
        "is importable)",
        requires="numba",
    )
    def _kernel_numba(
        a: np.ndarray,
        b: np.ndarray,
        block: Optional[int],
        memory_budget: int,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        result = _get_numba_impl()(
            np.ascontiguousarray(a), np.ascontiguousarray(b)
        )
        if out is not None:
            np.copyto(out, result)
            return out
        return result


__all__ = [
    "AUTO",
    "auto_kernel",
    "DEFAULT_MEMORY_BUDGET",
    "INF",
    "KERNEL_ENV",
    "KernelSpec",
    "current_kernel_pin",
    "get_kernel",
    "iter_kernels",
    "kernel_names",
    "minplus",
    "minplus_gather",
    "minplus_power",
    "minplus_square",
    "register_kernel",
    "resolve_kernel",
    "use_kernel",
]
