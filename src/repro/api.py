"""Unified solver facade: typed configuration, batch execution, rich results.

This is the service-facing API layered on the variant registry
(:mod:`repro.core.registry`):

* :class:`SolverConfig` — a validated, immutable description of *how* to
  solve (variant, eps, t, seed, bandwidth, validation mode);
* :class:`ApspSolver` — the facade: ``solve(graph)`` for one instance,
  ``solve_many(graphs)`` for concurrent batch execution with per-graph
  deterministic RNG streams;
* :class:`ApspResult` — an :class:`~repro.core.results.Estimate` extended
  with the round ledger, wall-clock timing, an optional measured-stretch
  certificate, and ``to_json()``/``from_json()`` for downstream services.

Determinism contract: ``solve_many([g0, g1, ...])`` with seed ``s`` gives
graph ``i`` the RNG stream ``np.random.SeedSequence(s, spawn_key=(i,))``,
regardless of executor or worker count.  Running the legacy
:func:`repro.approximate_apsp` sequentially with the same streams produces
bit-identical estimates — both paths dispatch through
:func:`repro.core.registry.run_variant`.
"""

from __future__ import annotations

import base64
import json
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .cclique.accounting import LedgerEntry, RoundLedger
from .core.registry import VariantSpec, get_variant, run_variant
from .core.results import Estimate
from .graphs.distances import cached_exact_apsp
from .graphs.graph import WeightedGraph
from .graphs.validation import ApproximationReport, check_estimate
from .semiring.kernels import AUTO, current_kernel_pin, get_kernel, use_kernel
from .semiring.sharded import (
    ShardPlan,
    current_shard_plan,
    resolve_shard_plan,
    use_shard_plan,
)

#: Recognised validation modes for :class:`SolverConfig`.
VALIDATION_MODES = ("none", "stretch", "strict")

#: Recognised executors for :meth:`ApspSolver.solve_many`.
EXECUTORS = ("serial", "thread", "process")

#: Recognised estimate-matrix encodings for :meth:`ApspResult.to_dict`.
MATRIX_ENCODINGS = ("list", "b64")


@dataclass(frozen=True)
class SolverConfig:
    """Immutable, validated solver configuration.

    Parameters
    ----------
    variant:
        A registered variant name (see ``repro.core.registry``).
    eps:
        Approximation slack for the constant-factor variants.
    t:
        Theorem 1.2 tradeoff parameter (required for ``variant="tradeoff"``).
    seed:
        Base seed; per-graph streams are spawned from it deterministically.
    bandwidth_words:
        Words per message of the ledger's model variant (1 = standard
        Congested Clique).
    validation:
        ``"none"`` — trust the factor; ``"stretch"`` — also compute exact
        distances (memoised across variants by the content-hash oracle
        cache) and attach a measured-stretch certificate; ``"strict"`` —
        additionally raise if the certificate violates the declared
        factor.
    kernel:
        Min-plus kernel name for every tropical product of the solve
        (see :mod:`repro.semiring.kernels`); ``None``/``"auto"`` defers
        to env/auto selection.  Applied per worker via
        :func:`repro.semiring.kernels.use_kernel`, so concurrent batches
        with different configs do not interfere.
    extra_params:
        Additional variant-specific keyword parameters (e.g.
        ``{"hop_parameter": 8}`` for UY90); unknown keys are dropped by
        the registry's parameter resolution.
    """

    variant: str = "theorem11"
    eps: float = 0.1
    t: Optional[int] = None
    seed: int = 0
    bandwidth_words: int = 1
    validation: str = "none"
    kernel: Optional[str] = None
    extra_params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        spec = get_variant(self.variant)  # raises ValueError on unknown
        if not self.eps > 0:
            raise ValueError(f"eps must be positive, got {self.eps}")
        if self.t is not None and self.t < 1:
            raise ValueError(f"t must be >= 1, got {self.t}")
        if "t" in spec.required_params and self.t is None:
            raise ValueError(f"variant={self.variant!r} requires the parameter t")
        if int(self.bandwidth_words) < 1:
            raise ValueError("bandwidth_words must be >= 1")
        if self.validation not in VALIDATION_MODES:
            raise ValueError(
                f"validation must be one of {VALIDATION_MODES}, "
                f"got {self.validation!r}"
            )
        if self.kernel is not None and self.kernel != AUTO:
            get_kernel(self.kernel)  # raises ValueError on unknown names

    @property
    def spec(self) -> VariantSpec:
        """The registered spec this config targets."""
        return get_variant(self.variant)

    def params(self) -> Dict[str, Any]:
        """Variant parameters to forward to the registry dispatch."""
        merged: Dict[str, Any] = {"eps": self.eps, "t": self.t}
        merged.update(self.extra_params)
        return merged

    def rng_for(self, stream: int = 0) -> np.random.Generator:
        """The deterministic RNG for batch stream ``stream``."""
        return np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(int(stream),))
        )

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["extra_params"] = dict(self.extra_params)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolverConfig":
        return cls(**dict(data))


@dataclass
class ApspResult(Estimate):
    """An :class:`Estimate` plus execution context, ready for services.

    Inherits ``estimate``/``factor``/``meta`` (the ledger stays in
    ``meta["ledger"]``, as the legacy API promises) and adds the variant
    name, wall-clock time, the RNG stream index, and — when the config
    requested validation — a measured-stretch certificate.
    """

    variant: str = ""
    wall_time_s: float = 0.0
    seed: Optional[int] = None
    stream: int = 0
    stretch: Optional[ApproximationReport] = None

    @property
    def ledger(self) -> Optional[RoundLedger]:
        return self.meta.get("ledger")

    @property
    def total_rounds(self) -> Optional[int]:
        ledger = self.ledger
        return None if ledger is None else ledger.total_rounds

    def summary(self) -> Dict[str, Any]:
        """JSON-serializable summary without the O(n^2) estimate matrix."""
        ledger = self.ledger
        return {
            "variant": self.variant,
            "n": self.n,
            "factor": float(self.factor),
            "wall_time_s": float(self.wall_time_s),
            "seed": self.seed,
            "stream": int(self.stream),
            "rounds": None if ledger is None else int(ledger.total_rounds),
            "rounds_by_phase": (
                None if ledger is None else dict(ledger.rounds_by_phase())
            ),
            "seconds_by_phase": (
                None if ledger is None else dict(ledger.seconds_by_phase())
            ),
            "stretch": None if self.stretch is None else asdict(self.stretch),
            "meta": _jsonable({k: v for k, v in self.meta.items() if k != "ledger"}),
        }

    def to_dict(
        self,
        include_estimate: bool = True,
        matrix_encoding: str = "list",
    ) -> Dict[str, Any]:
        """Full serializable payload, optionally with the estimate matrix.

        ``matrix_encoding="list"`` emits the matrix as nested Python lists
        (human-readable, ``inf`` → ``null``) — slow and huge at n ≥ 512,
        where full-precision floats cost ~18 characters each; ``"b64"``
        emits a compact base64 record of the raw float64 bytes (a constant
        ~10.7 characters per entry and an order of magnitude faster to
        encode).  :meth:`from_json` understands both.
        """
        if matrix_encoding not in MATRIX_ENCODINGS:
            raise ValueError(
                f"matrix_encoding must be one of {MATRIX_ENCODINGS}, "
                f"got {matrix_encoding!r}"
            )
        out = self.summary()
        ledger = self.ledger
        out["ledger"] = None if ledger is None else _ledger_to_dict(ledger)
        if include_estimate:
            out["estimate"] = (
                _matrix_to_b64(self.estimate)
                if matrix_encoding == "b64"
                else _matrix_to_jsonable(self.estimate)
            )
        return out

    def to_json(
        self,
        include_estimate: bool = True,
        matrix_encoding: str = "list",
        **dumps_kwargs: Any,
    ) -> str:
        """Serialize to JSON (``inf`` entries encoded as ``null``)."""
        return json.dumps(
            self.to_dict(
                include_estimate=include_estimate,
                matrix_encoding=matrix_encoding,
            ),
            **dumps_kwargs,
        )

    @classmethod
    def from_json(cls, payload: str) -> "ApspResult":
        """Rebuild a result (estimate, ledger, certificate) from JSON."""
        data = json.loads(payload)
        meta = dict(data.get("meta") or {})
        ledger_data = data.get("ledger")
        if ledger_data is not None:
            meta["ledger"] = _ledger_from_dict(ledger_data)
        estimate_rows = data.get("estimate")
        if estimate_rows is None:
            estimate = np.full((data["n"], data["n"]), np.inf)
            np.fill_diagonal(estimate, 0.0)
        elif isinstance(estimate_rows, Mapping):
            estimate = _matrix_from_b64(estimate_rows)
        else:
            estimate = _matrix_from_jsonable(estimate_rows)
        stretch = data.get("stretch")
        return cls(
            estimate=estimate,
            factor=float(data["factor"]),
            meta=meta,
            variant=data.get("variant", ""),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            seed=data.get("seed"),
            stream=int(data.get("stream", 0)),
            stretch=None if stretch is None else ApproximationReport(**stretch),
        )

    def oracle(self, graph: WeightedGraph, **meta: Any) -> "Any":
        """Assemble a :class:`repro.serve.DistanceOracle` from this result.

        The query-plane artifact: the estimate matrix plus a vectorized
        next-hop table over ``graph``, ready for ``query_many`` /
        ``route_batch`` / persistence.  ``graph`` must be the instance
        this result was solved on; extra keyword arguments are merged
        into the oracle's metadata.
        """
        from .serve import DistanceOracle  # local import: serve layers on api

        return DistanceOracle.build(graph, self, meta=meta or None)


class ApspSolver:
    """The solver facade: one config, any number of graphs.

    Examples
    --------
    >>> solver = ApspSolver(SolverConfig(variant="theorem11", seed=0))
    >>> result = solver.solve(graph)            # doctest: +SKIP
    >>> results = solver.solve_many([g1, g2])   # doctest: +SKIP
    """

    def __init__(self, config: Optional[SolverConfig] = None, **overrides: Any):
        if config is None:
            config = SolverConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a SolverConfig or keyword overrides")
        self.config = config

    def solve(self, graph: WeightedGraph, stream: int = 0) -> ApspResult:
        """Solve one graph on RNG stream ``stream`` (default: stream 0).

        ``solve(g)`` is exactly ``solve_many([g])[0]``.
        """
        return _solve_one(
            self.config, graph, stream, current_kernel_pin(),
            current_shard_plan(),
        )

    def solve_many(
        self,
        graphs: Sequence[WeightedGraph],
        executor: str = "thread",
        max_workers: Optional[int] = None,
    ) -> List[ApspResult]:
        """Solve a batch concurrently; results keep input order.

        Graph ``i`` always runs on RNG stream ``i``, so the output is
        independent of the executor, worker count, and completion order.

        The ambient min-plus kernel pin (a :func:`repro.semiring.kernels.
        use_kernel` context or ``REPRO_MINPLUS_KERNEL``) is captured here,
        in the submitting process, and re-applied inside every worker —
        thread contexts and spawned processes do not inherit the caller's
        ContextVar, so without this hand-off a non-default kernel would
        silently fall back to auto-selection under ``executor="process"``.
        An explicit ``config.kernel`` still takes precedence.  The
        ambient :class:`~repro.semiring.sharded.ShardPlan` (a
        ``use_shard_plan`` scope or the ``REPRO_SHARD_*`` environment)
        rides the same hand-off, so sharded-kernel batches keep their
        tile/worker/placement configuration in every executor.
        """
        graphs = list(graphs)
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        kernel_pin = current_kernel_pin()
        shard_plan = current_shard_plan()
        tasks = [
            (self.config, g, i, kernel_pin, shard_plan)
            for i, g in enumerate(graphs)
        ]
        if executor == "serial" or len(graphs) <= 1:
            return [_solve_task(task) for task in tasks]
        pool_cls = ThreadPoolExecutor if executor == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=max_workers) as pool:
            return list(pool.map(_solve_task, tasks))


def _solve_one(
    config: SolverConfig,
    graph: WeightedGraph,
    stream: int,
    kernel_pin: Optional[str] = None,
    shard_plan: Optional[ShardPlan] = None,
) -> ApspResult:
    """Run one (config, graph, stream) task — shared by all executors.

    ``kernel_pin`` and ``shard_plan`` are the ambient kernel/shard
    configuration captured at submit time; the config's own kernel wins
    when set.
    """
    rng = config.rng_for(stream)
    ledger = RoundLedger(graph.n, bandwidth_words=config.bandwidth_words)
    effective_kernel = (
        config.kernel
        if config.kernel is not None and config.kernel != AUTO
        else kernel_pin
    )
    start = time.perf_counter()
    with use_kernel(effective_kernel), use_shard_plan(shard_plan):
        estimate = run_variant(
            config.variant, graph, rng=rng, ledger=ledger, **config.params()
        )
        # Recorded inside the context and *inside the worker*, so batch
        # results attest which pin was actually live where they ran.
        estimate.meta["kernel_pin"] = current_kernel_pin()
        if effective_kernel == "sharded" or current_kernel_pin() == "sharded":
            # The plan the sharded products actually ran under — in
            # particular its dtype policy, so float32 (non-bit-identical)
            # results are flagged on the artifact.
            estimate.meta["shard_plan"] = resolve_shard_plan().to_dict()
    wall_time = time.perf_counter() - start
    stretch: Optional[ApproximationReport] = None
    if config.validation != "none":
        report = check_estimate(cached_exact_apsp(graph), estimate.estimate)
        stretch = report
        if config.validation == "strict":
            if not report.sound:
                raise AssertionError(
                    f"variant={config.variant!r}: estimate underestimates "
                    f"{report.underestimates} of {report.pairs_checked} pairs"
                )
            if report.max_stretch > estimate.factor + 1e-9:
                raise AssertionError(
                    f"variant={config.variant!r}: measured stretch "
                    f"{report.max_stretch:.4f} exceeds the factor "
                    f"{estimate.factor:.4f}"
                )
    return ApspResult(
        estimate=estimate.estimate,
        factor=estimate.factor,
        meta=estimate.meta,
        variant=config.variant,
        wall_time_s=wall_time,
        seed=config.seed,
        stream=stream,
        stretch=stretch,
    )


def _solve_task(payload) -> ApspResult:
    """Top-level adapter so process pools can pickle the work item."""
    config, graph, stream, kernel_pin, shard_plan = payload
    return _solve_one(config, graph, stream, kernel_pin, shard_plan)


# --------------------------------------------------------------------- #
# JSON helpers
# --------------------------------------------------------------------- #


def _matrix_to_jsonable(matrix: np.ndarray) -> List[List[Optional[float]]]:
    """Nested lists with ``inf`` -> ``None`` (strict-JSON friendly)."""
    dense = np.asarray(matrix, dtype=np.float64)
    return [
        [None if not np.isfinite(x) else float(x) for x in row] for row in dense
    ]


def _matrix_from_jsonable(rows: List[List[Optional[float]]]) -> np.ndarray:
    out = np.array(
        [[np.inf if x is None else float(x) for x in row] for row in rows],
        dtype=np.float64,
    )
    return out


def _matrix_to_b64(matrix: np.ndarray, dtype: str = "<f8") -> Dict[str, Any]:
    """Compact encoding: raw little-endian bytes, base64-wrapped.

    ``inf`` needs no special casing — it round-trips through the binary
    representation exactly, unlike the strict-JSON ``list`` encoding.
    ``dtype`` selects the stored element type (``"<f8"`` for distance
    matrices, ``"<i8"`` for next-hop tables); the record carries it, so
    :func:`_matrix_from_b64` restores the array losslessly.
    """
    dense = np.ascontiguousarray(matrix, dtype=np.dtype(dtype))
    return {
        "encoding": "b64",
        "dtype": dense.dtype.str,
        "shape": list(dense.shape),
        "data": base64.b64encode(dense.tobytes()).decode("ascii"),
    }


def _matrix_from_b64(record: Mapping[str, Any]) -> np.ndarray:
    if record.get("encoding") != "b64":
        raise ValueError(f"unknown matrix encoding: {record.get('encoding')!r}")
    raw = base64.b64decode(record["data"])
    out = np.frombuffer(raw, dtype=np.dtype(record.get("dtype", "<f8")))
    return out.reshape(tuple(int(d) for d in record["shape"])).copy()


def _ledger_to_dict(ledger: RoundLedger) -> Dict[str, Any]:
    return {
        "n": ledger.n,
        "bandwidth_words": ledger.bandwidth_words,
        "phase_seconds": dict(ledger.phase_seconds),
        "timed_seconds": ledger.timed_seconds,
        "entries": [
            {
                "phase": e.phase,
                "rounds": e.rounds,
                "bandwidth_words": e.bandwidth_words,
                "detail": e.detail,
            }
            for e in ledger.entries
        ],
    }


def _ledger_from_dict(data: Mapping[str, Any]) -> RoundLedger:
    ledger = RoundLedger(int(data["n"]), bandwidth_words=int(data["bandwidth_words"]))
    ledger.phase_seconds = {
        str(k): float(v) for k, v in (data.get("phase_seconds") or {}).items()
    }
    ledger.timed_seconds = float(data.get("timed_seconds", 0.0))
    for entry in data.get("entries", []):
        ledger.entries.append(
            LedgerEntry(
                phase=entry["phase"],
                rounds=int(entry["rounds"]),
                bandwidth_words=int(entry["bandwidth_words"]),
                detail=entry.get("detail", ""),
            )
        )
    return ledger


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of pipeline metadata to JSON-safe values."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if np.isfinite(value) else None
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        f = float(value)
        return f if np.isfinite(f) else None
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    return repr(value)


__all__ = [
    "ApspResult",
    "ApspSolver",
    "SolverConfig",
    "EXECUTORS",
    "VALIDATION_MODES",
]
