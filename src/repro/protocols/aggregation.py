"""Basic distributed aggregation protocols on the message-level simulator.

Small synchronous building blocks the paper takes for granted — leader
election, global min/sum, convergecast — implemented as real message
schedules on :class:`~repro.cclique.model.SimulatedClique` and used by the
message-level protocol implementations in this package.

All of them are single-round or two-round in the clique (every node can
talk to every node directly), which is exactly why the paper never spells
them out; having them executable lets the higher protocols be written
without hand-waving.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..cclique.message import Message
from ..cclique.model import SimulatedClique


def elect_leader(clique: SimulatedClique, ids: Optional[Sequence[int]] = None) -> Tuple[int, int]:
    """Elect the smallest-ID node; one round of everyone -> node 0 -> everyone.

    In the clique the canonical leader is node 0 by renaming (Section 2),
    but the protocol is still exchanged so the round cost is real: every
    node announces its ID to node 0 (1 round), node 0 broadcasts the
    winner (1 round).  Returns ``(leader, rounds)``.
    """
    n = clique.n
    candidate_ids = list(ids) if ids is not None else list(range(n))
    if len(candidate_ids) != n:
        raise ValueError("need one candidate ID per node")
    for node in range(n):
        clique.send(Message(node, 0, (candidate_ids[node],), tag="elect"))
    clique.step()
    announced = min(
        int(m.payload[0]) for m in clique.inbox(0) if m.tag == "elect"
    )
    for node in range(n):
        clique.send(Message(0, node, (announced,), tag="leader"))
    clique.step()
    winners = set()
    for node in range(n):
        for m in clique.inbox(node):
            if m.tag == "leader":
                winners.add(int(m.payload[0]))
    if winners != {announced}:  # pragma: no cover - simulator invariant
        raise RuntimeError("leader announcement diverged")
    return announced, 2


def global_reduce(
    clique: SimulatedClique,
    values: Sequence[float],
    combine: Callable[[float, float], float],
    initial: float,
) -> Tuple[float, int]:
    """Reduce one value per node at node 0, then broadcast; two rounds.

    ``combine`` must be associative and commutative (min, max, +, ...).
    Returns ``(result, rounds)``; every node learns the result.
    """
    n = clique.n
    if len(values) != n:
        raise ValueError("need one value per node")
    for node in range(n):
        clique.send(Message(node, 0, (values[node],), tag="reduce"))
    clique.step()
    accumulator = initial
    for m in clique.inbox(0):
        if m.tag == "reduce":
            accumulator = combine(accumulator, float(m.payload[0]))
    for node in range(n):
        clique.send(Message(0, node, (accumulator,), tag="reduced"))
    clique.step()
    for node in range(n):
        clique.inbox(node)  # drain
    return accumulator, 2


def global_min(clique: SimulatedClique, values: Sequence[float]) -> Tuple[float, int]:
    """Global minimum of one value per node (two rounds)."""
    return global_reduce(clique, values, min, float("inf"))


def global_sum(clique: SimulatedClique, values: Sequence[float]) -> Tuple[float, int]:
    """Global sum of one value per node (two rounds)."""
    return global_reduce(clique, values, lambda a, b: a + b, 0.0)


def share_flags(clique: SimulatedClique, flags: Sequence[bool]) -> Tuple[List[bool], int]:
    """Everyone learns everyone's one-bit flag in a single round.

    The primitive behind the hitting-set repetitions of Lemma 6.2 ("each
    repetition uses only O(1) bits of communication between each pair").
    """
    n = clique.n
    if len(flags) != n:
        raise ValueError("need one flag per node")
    for u in range(n):
        for v in range(n):
            clique.send(Message(u, v, (1 if flags[u] else 0,), tag="flag"))
    clique.step()
    table: List[bool] = [False] * n
    reference: Optional[List[bool]] = None
    for v in range(n):
        local = [False] * n
        for m in clique.inbox(v):
            if m.tag == "flag":
                local[m.sender] = bool(m.payload[0])
        if reference is None:
            reference = local
        table = local
    assert reference is not None
    return reference, 1
