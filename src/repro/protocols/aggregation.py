"""Basic distributed aggregation protocols, staged as array batches.

Small synchronous building blocks the paper takes for granted — leader
election, global min/sum, convergecast — implemented as real message
schedules on the array-native communication plane
(:class:`~repro.cclique.engine.ArrayClique`, reached through the
:class:`~repro.cclique.model.SimulatedClique` adapter) and used by the
message-level protocol implementations in this package.

All of them are single-round or two-round in the clique (every node can
talk to every node directly), which is exactly why the paper never spells
them out; having them executable lets the higher protocols be written
without hand-waving.  Each round is one ``stage`` call of flat numpy
columns — no per-message loops — so these primitives run at four-digit
``n`` without breaking a sweat.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..cclique.engine import ArrayClique
from ..cclique.model import SimulatedClique

Clique = Union[SimulatedClique, ArrayClique]


def _engine_of(clique: Clique) -> ArrayClique:
    return clique.engine if isinstance(clique, SimulatedClique) else clique


def _tagged_rows(
    engine: ArrayClique, node: int, tag: str
) -> Tuple[np.ndarray, np.ndarray]:
    """``(src, payload)`` of ``node``'s inbox rows carrying ``tag``."""
    view = engine.inbox_arrays(node)
    if not len(view):
        return np.empty(0, dtype=np.int64), np.empty((0, 0))
    tag_id = engine.tag_id(tag)
    keep = view.tag == tag_id
    return view.src[keep], view.payload[keep]


def elect_leader(clique: Clique, ids: Optional[Sequence[int]] = None) -> Tuple[int, int]:
    """Elect the smallest-ID node; one round of everyone -> node 0 -> everyone.

    In the clique the canonical leader is node 0 by renaming (Section 2),
    but the protocol is still exchanged so the round cost is real: every
    node announces its ID to node 0 (1 round), node 0 broadcasts the
    winner (1 round).  Returns ``(leader, rounds)``.
    """
    engine = _engine_of(clique)
    n = engine.n
    candidates = (
        np.asarray(ids, dtype=np.int64)
        if ids is not None
        else np.arange(n, dtype=np.int64)
    )
    if len(candidates) != n:
        raise ValueError("need one candidate ID per node")
    engine.stage(np.arange(n, dtype=np.int64), 0, candidates.astype(np.float64),
                 tag="elect")
    clique.step()
    _, payload = _tagged_rows(engine, 0, "elect")
    announced = int(payload[:, 0].min())
    engine.stage(0, np.arange(n, dtype=np.int64), float(announced), tag="leader")
    clique.step()
    nodes, view = engine.collect()
    leader_id = engine.tag_id("leader")
    winners = set(view.payload[view.tag == leader_id, 0].astype(np.int64).tolist())
    if winners != {announced}:  # pragma: no cover - simulator invariant
        raise RuntimeError("leader announcement diverged")
    return announced, 2


def global_reduce(
    clique: Clique,
    values: Sequence[float],
    combine: Callable[[float, float], float],
    initial: float,
) -> Tuple[float, int]:
    """Reduce one value per node at node 0, then broadcast; two rounds.

    ``combine`` must be associative and commutative (min, max, +, ...).
    Returns ``(result, rounds)``; every node learns the result.
    """
    engine = _engine_of(clique)
    n = engine.n
    column = np.asarray(values, dtype=np.float64)
    if len(column) != n:
        raise ValueError("need one value per node")
    engine.stage(np.arange(n, dtype=np.int64), 0, column, tag="reduce")
    clique.step()
    src, payload = _tagged_rows(engine, 0, "reduce")
    accumulator = initial
    # Fold in sender order — the staging order of the historical schedule —
    # so non-associative float effects stay reproducible.
    for value in payload[np.argsort(src, kind="stable"), 0]:
        accumulator = combine(accumulator, float(value))
    engine.stage(0, np.arange(n, dtype=np.int64), float(accumulator), tag="reduced")
    clique.step()
    engine.collect()  # drain
    return accumulator, 2


def global_min(clique: Clique, values: Sequence[float]) -> Tuple[float, int]:
    """Global minimum of one value per node (two rounds)."""
    return global_reduce(clique, values, min, float("inf"))


def global_sum(clique: Clique, values: Sequence[float]) -> Tuple[float, int]:
    """Global sum of one value per node (two rounds)."""
    return global_reduce(clique, values, lambda a, b: a + b, 0.0)


def share_flags(clique: Clique, flags: Sequence[bool]) -> Tuple[List[bool], int]:
    """Everyone learns everyone's one-bit flag in a single round.

    The primitive behind the hitting-set repetitions of Lemma 6.2 ("each
    repetition uses only O(1) bits of communication between each pair").
    """
    engine = _engine_of(clique)
    n = engine.n
    if len(flags) != n:
        raise ValueError("need one flag per node")
    bits = np.asarray([1.0 if f else 0.0 for f in flags], dtype=np.float64)
    engine.stage(
        np.repeat(np.arange(n, dtype=np.int64), n),
        np.tile(np.arange(n, dtype=np.int64), n),
        np.repeat(bits, n).reshape(-1, 1),
        tag="flag",
    )
    clique.step()
    reference: Optional[List[bool]] = None
    for v in range(n):
        src, payload = _tagged_rows(engine, v, "flag")
        local_arr = np.zeros(n, dtype=bool)
        local_arr[src] = payload[:, 0] > 0
        local = local_arr.tolist()
        if reference is None:
            reference = local
    assert reference is not None
    return reference, 1
