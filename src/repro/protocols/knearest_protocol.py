"""Message-level k-nearest protocols (Section 5).

Two executable schedules:

* :func:`run_knearest_broadcast_protocol` — the trivial regime of
  Section 5.2 (``k ∈ O(1)``): every node broadcasts its k shortest
  outgoing edges with the Section 2.3 two-round trick, then computes the
  filtered h-hop distances locally.  Output is asserted identical to
  :func:`repro.core.knearest.knearest_one_round`.

* :func:`run_bin_exchange` — the non-trivial regime's *communication
  pattern*: the global edge list is split into bins, h-combinations are
  assigned to nodes, and the bin contents are routed so that the assigned
  node of every combination holds exactly its bins (Step 3 of the
  algorithm).  The function returns the per-node received edge sets plus
  the measured routing rounds, and the tests verify the coverage claim of
  Lemma 5.4: every h-edge path of the filtered graph is fully contained
  in the bins of some h-combination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..cclique.message import Message
from ..cclique.model import SimulatedClique
from ..cclique.routing import RoutingStats, route_two_phase
from ..core.knearest import BinPlan, KNearestResult, make_bin_plan
from ..graphs.graph import WeightedGraph
from ..semiring.minplus import (
    hop_power_row_sparse,
    k_smallest_in_rows,
    row_sparse_from_dense,
)


@dataclass
class BroadcastKNearestResult:
    """Outcome of the trivial-regime protocol."""

    result: KNearestResult
    rounds: int


def run_knearest_broadcast_protocol(
    graph: WeightedGraph,
    k: int,
    h: int,
) -> BroadcastKNearestResult:
    """The ``k ∈ O(1)`` fallback: broadcast everyone's k-edge list.

    Every node publishes its k shortest outgoing edges; each edge is one
    3-word message to each other node, batched through the simulator in
    ``k`` rounds (one edge per ordered pair per round).  Each node then
    computes the filtered h-hop distances locally — the same local
    computation the bin-combination nodes perform in the general regime.
    """
    n = graph.n
    clique = SimulatedClique(n, bandwidth_words=3, strict=False)
    lists = [graph.k_shortest_out_edges(u, k) for u in range(n)]
    for u in range(n):
        for endpoint, weight in lists[u]:
            for v in range(n):
                if v != u:
                    clique.send(
                        Message(u, v, (u, endpoint, weight), tag="knn:edge")
                    )
    rounds = clique.drain()

    # Every node now holds the full filtered edge set; reconstruct it once
    # (all nodes hold identical copies) and compute the filtered power.
    matrix = np.full((n, n), np.inf)
    np.fill_diagonal(matrix, 0.0)
    seen: Set[Tuple[int, int]] = set()
    for v in range(n):
        for message in clique.inbox(v):
            if message.tag != "knn:edge":
                continue
            source, endpoint, weight = message.payload
            matrix[int(source), int(endpoint)] = min(
                matrix[int(source), int(endpoint)], float(weight)
            )
            seen.add((int(source), int(endpoint)))
    # own edges (a node obviously knows its own list without messages)
    for u in range(n):
        for endpoint, weight in lists[u]:
            matrix[u, endpoint] = min(matrix[u, endpoint], weight)
    sparse = row_sparse_from_dense(matrix, k)
    powered = hop_power_row_sparse(sparse, h)
    indices, values = k_smallest_in_rows(powered, k)
    result = KNearestResult(indices=indices, values=values, k=k, h=h, iterations=1)
    return BroadcastKNearestResult(result=result, rounds=rounds)


@dataclass
class BinExchangeResult:
    """Outcome of the Step 2/3 bin distribution."""

    plan: BinPlan
    assignments: List[Tuple[int, ...]]
    received: Dict[int, List[Tuple[int, int, float]]]
    stats: RoutingStats


def global_edge_list(graph: WeightedGraph, k: int) -> List[Tuple[int, int, float]]:
    """The ordered list ``M = M(0) ◦ M(1) ◦ ... ◦ M(n-1)`` of Section 5.2.

    Each node contributes exactly ``k`` entries; nodes with fewer than
    ``k`` outgoing edges pad with self-loop sentinels of infinite weight,
    keeping every local list the same length (the algorithm's positional
    arithmetic depends on it).
    """
    entries: List[Tuple[int, int, float]] = []
    for u in range(graph.n):
        local = graph.k_shortest_out_edges(u, k)
        for endpoint, weight in local:
            entries.append((u, int(endpoint), float(weight)))
        for _ in range(k - len(local)):
            entries.append((u, u, math.inf))
    return entries


def run_bin_exchange(graph: WeightedGraph, k: int, h: int) -> BinExchangeResult:
    """Distribute bins to h-combination owners (Steps 2-3 of Section 5.2).

    Every h-combination is assigned to a distinct node (the paper proves
    ``h·C(p,h) <= n``); the owner of combination ``j`` receives all edges
    in each of its bins, shipped through the two-phase router.  Returns
    who received what, so correctness properties (bin coverage, load
    bounds) can be asserted at the message level.
    """
    n = graph.n
    plan = make_bin_plan(n, k, h)
    if plan.trivial:
        raise ValueError(
            "trivial bin plan: use run_knearest_broadcast_protocol instead"
        )
    edges = global_edge_list(graph, k)
    assignments = plan.assignments()
    if len(assignments) > n:  # pragma: no cover - excluded by the counting claim
        raise RuntimeError("more combinations than nodes")

    messages: List[Message] = []
    for owner, combination in enumerate(assignments):
        for bin_index in combination:
            start = bin_index * plan.bin_size
            stop = min(len(edges), start + plan.bin_size)
            for position in range(start, stop):
                source, endpoint, weight = edges[position]
                if not math.isfinite(weight):
                    continue  # padding sentinel: nothing to ship
                messages.append(
                    Message(
                        source,
                        owner,
                        (source, endpoint, weight, bin_index),
                        tag="bins",
                    )
                )
    # payload is 4 words + 1 relay word: still O(log n) bits per message.
    delivered, stats = route_two_phase(messages, n, bandwidth_words=6)
    received: Dict[int, List[Tuple[int, int, float]]] = {}
    for owner in range(len(assignments)):
        rows = []
        for message in delivered.get(owner, []):
            if message.tag == "bins":
                source, endpoint, weight, _ = message.payload
                rows.append((int(source), int(endpoint), float(weight)))
        received[owner] = rows
    return BinExchangeResult(
        plan=plan, assignments=assignments, received=received, stats=stats
    )
