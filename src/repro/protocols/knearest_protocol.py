"""Message-level k-nearest protocols (Section 5), staged as array batches.

Two executable schedules:

* :func:`run_knearest_broadcast_protocol` — the trivial regime of
  Section 5.2 (``k ∈ O(1)``): every node broadcasts its k shortest
  outgoing edges with the Section 2.3 two-round trick, then computes the
  filtered h-hop distances locally.  Output is asserted identical to
  :func:`repro.core.knearest.knearest_one_round`.

* :func:`run_bin_exchange` — the non-trivial regime's *communication
  pattern*: the global edge list is split into bins, h-combinations are
  assigned to nodes, and the bin contents are routed so that the assigned
  node of every combination holds exactly its bins (Step 3 of the
  algorithm).  The function returns the per-node received edge sets plus
  the measured routing rounds, and the tests verify the coverage claim of
  Lemma 5.4: every h-edge path of the filtered graph is fully contained
  in the bins of some h-combination.

Both schedules build their whole message sets as flat numpy columns (one
row per message) and push them through the array plane in one staging
call, so the protocols validate at n three orders of magnitude beyond the
old per-``Message`` loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..cclique.engine import ArrayClique, MessageBatch
from ..cclique.routing import RoutingStats, route_batch_two_phase
from ..core.knearest import BinPlan, KNearestResult, make_bin_plan
from ..graphs.graph import WeightedGraph
from ..semiring.minplus import (
    hop_power_row_sparse,
    k_smallest_in_rows,
    row_sparse_from_dense,
)


@dataclass
class BroadcastKNearestResult:
    """Outcome of the trivial-regime protocol."""

    result: KNearestResult
    rounds: int


def _filtered_edge_columns(
    graph: WeightedGraph, k: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flat ``(source, endpoint, weight)`` columns of every node's k-list."""
    sources: List[int] = []
    endpoints: List[int] = []
    weights: List[float] = []
    for u in range(graph.n):
        for endpoint, weight in graph.k_shortest_out_edges(u, k):
            sources.append(u)
            endpoints.append(int(endpoint))
            weights.append(float(weight))
    return (
        np.asarray(sources, dtype=np.int64),
        np.asarray(endpoints, dtype=np.int64),
        np.asarray(weights, dtype=np.float64),
    )


def run_knearest_broadcast_protocol(
    graph: WeightedGraph,
    k: int,
    h: int,
    *,
    faults=None,
    integrity=None,
) -> BroadcastKNearestResult:
    """The ``k ∈ O(1)`` fallback: broadcast everyone's k-edge list.

    Every node publishes its k shortest outgoing edges; each edge is one
    3-word message to each other node, all ``n·k·(n-1)`` of them staged as
    a single flat batch (the engine spills them across ``k`` rounds, one
    edge per ordered pair per round, exactly like the historical
    schedule).  Each node then computes the filtered h-hop distances
    locally — the same local computation the bin-combination nodes perform
    in the general regime.
    """
    n = graph.n
    clique = ArrayClique(n, bandwidth_words=3, strict=False)
    if faults is not None:
        clique.attach_faults(faults)
    if integrity is not None:
        clique.attach_integrity(integrity)
    e_src, e_end, e_w = _filtered_edge_columns(graph, k)

    # One row per (edge, target != source).
    m = len(e_src)
    src = np.repeat(e_src, n)
    dst = np.tile(np.arange(n, dtype=np.int64), m)
    keep = src != dst
    payload = np.column_stack([e_src, e_end, e_w])
    clique.stage(
        src[keep],
        dst[keep],
        np.repeat(payload, n, axis=0)[keep],
        tag="knn:edge",
    )
    rounds = clique.drain()

    # Every node now holds the full filtered edge set; reconstruct it once
    # (all nodes hold identical copies) and compute the filtered power.
    matrix = np.full((n, n), np.inf)
    np.fill_diagonal(matrix, 0.0)
    _, view = clique.collect()
    if len(view):
        # Delivered payloads are untrusted under faults: a corrupted
        # endpoint must not scatter out of the matrix.
        a_f, b_f = view.payload[:, 0], view.payload[:, 1]
        ok = np.isfinite(a_f) & np.isfinite(b_f)
        a_i = np.where(ok, a_f, 0).astype(np.int64)
        b_i = np.where(ok, b_f, 0).astype(np.int64)
        ok &= (a_f == a_i) & (a_i >= 0) & (a_i < n)
        ok &= (b_f == b_i) & (b_i >= 0) & (b_i < n)
        np.minimum.at(matrix, (a_i[ok], b_i[ok]), view.payload[ok, 2])
    # own edges (a node obviously knows its own list without messages)
    np.minimum.at(matrix, (e_src, e_end), e_w)
    sparse = row_sparse_from_dense(matrix, k)
    powered = hop_power_row_sparse(sparse, h)
    indices, values = k_smallest_in_rows(powered, k)
    result = KNearestResult(indices=indices, values=values, k=k, h=h, iterations=1)
    return BroadcastKNearestResult(result=result, rounds=rounds)


@dataclass
class BinExchangeResult:
    """Outcome of the Step 2/3 bin distribution."""

    plan: BinPlan
    assignments: List[Tuple[int, ...]]
    received: Dict[int, List[Tuple[int, int, float]]]
    stats: RoutingStats


def global_edge_list(graph: WeightedGraph, k: int) -> List[Tuple[int, int, float]]:
    """The ordered list ``M = M(0) ◦ M(1) ◦ ... ◦ M(n-1)`` of Section 5.2.

    Each node contributes exactly ``k`` entries; nodes with fewer than
    ``k`` outgoing edges pad with self-loop sentinels of infinite weight,
    keeping every local list the same length (the algorithm's positional
    arithmetic depends on it).
    """
    entries: List[Tuple[int, int, float]] = []
    for u in range(graph.n):
        local = graph.k_shortest_out_edges(u, k)
        for endpoint, weight in local:
            entries.append((u, int(endpoint), float(weight)))
        for _ in range(k - len(local)):
            entries.append((u, u, math.inf))
    return entries


def run_bin_exchange(
    graph: WeightedGraph,
    k: int,
    h: int,
    *,
    faults=None,
    max_retries: int = 0,
    recovery=None,
    integrity=None,
) -> BinExchangeResult:
    """Distribute bins to h-combination owners (Steps 2-3 of Section 5.2).

    Every h-combination is assigned to a distinct node (the paper proves
    ``h·C(p,h) <= n``); the owner of combination ``j`` receives all edges
    in each of its bins, shipped through the two-phase router as one flat
    batch.  Returns who received what, so correctness properties (bin
    coverage, load bounds) can be asserted at the message level.
    """
    n = graph.n
    plan = make_bin_plan(n, k, h)
    if plan.trivial:
        raise ValueError(
            "trivial bin plan: use run_knearest_broadcast_protocol instead"
        )
    edges = global_edge_list(graph, k)
    assignments = plan.assignments()
    if len(assignments) > n:  # pragma: no cover - excluded by the counting claim
        raise RuntimeError("more combinations than nodes")

    edge_cols = np.asarray(edges, dtype=np.float64)  # (n*k, 3)
    position_chunks: List[np.ndarray] = []
    owner_chunks: List[np.ndarray] = []
    bin_chunks: List[np.ndarray] = []
    for owner, combination in enumerate(assignments):
        for bin_index in combination:
            start = bin_index * plan.bin_size
            stop = min(len(edges), start + plan.bin_size)
            positions = np.arange(start, stop, dtype=np.int64)
            position_chunks.append(positions)
            owner_chunks.append(np.full(len(positions), owner, dtype=np.int64))
            bin_chunks.append(np.full(len(positions), bin_index, dtype=np.int64))
    positions = np.concatenate(position_chunks)
    owners = np.concatenate(owner_chunks)
    bins = np.concatenate(bin_chunks)
    finite = np.isfinite(edge_cols[positions, 2])  # skip padding sentinels
    positions, owners, bins = positions[finite], owners[finite], bins[finite]

    batch = MessageBatch(
        src=edge_cols[positions, 0].astype(np.int64),
        dst=owners,
        payload=np.column_stack([edge_cols[positions], bins.astype(np.float64)]),
        tag="bins",
    )
    # payload is 4 words + 1 relay word: still O(log n) bits per message.
    delivered, stats = route_batch_two_phase(
        batch, n, bandwidth_words=6, faults=faults,
        max_retries=max_retries, recovery=recovery, integrity=integrity,
    )
    received: Dict[int, List[Tuple[int, int, float]]] = {}
    for owner in range(len(assignments)):
        _, payload = delivered.for_node(owner)
        received[owner] = [
            (int(row[0]), int(row[1]), float(row[2])) for row in payload
        ]
    return BinExchangeResult(
        plan=plan, assignments=assignments, received=received, stats=stats
    )
