"""Message-level computation of the skeleton x/y matrices (Lemma 6.2).

The "Computing the x-values and y-values" paragraph of Section 6.2, as an
actual communication schedule:

* **x-values**: each node ``u`` sends the tuple
  ``(c(u), delta(c(u), u) + delta(u, t))`` to every ``t ∈ ~N_k(u)``;
  each ``t`` takes, per skeleton node ``s_a``, the minimum received second
  component — that *is* ``x(s_a, t)`` — and reports it back to ``s_a``.
* **y-values**: each node ``v`` sends ``(c(v), w_tv + delta(v, c(v)))`` to
  every graph neighbour ``t``; each ``t`` minimises per ``s_b`` and
  reports ``y(t, s_b)`` to ``s_b``; the ``t = v`` case is local.

Both are O(n)-receive-load routed instances.  Tests assert the assembled
matrices equal :func:`repro.core.skeleton.skeleton_xy_matrices` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..cclique.message import Message
from ..cclique.routing import RoutingStats, route_two_phase
from ..graphs.graph import WeightedGraph
from ..semiring.minplus import INF


@dataclass
class SkeletonXYResult:
    """The x/y matrices plus the measured routing costs."""

    x: np.ndarray  # (|S|, n)
    y: np.ndarray  # (n, |S|)
    x_stats: RoutingStats
    y_stats: RoutingStats
    report_stats: RoutingStats


def run_skeleton_xy_protocol(
    graph: WeightedGraph,
    nbr_indices: np.ndarray,
    nbr_values: np.ndarray,
    center: np.ndarray,
    center_delta: np.ndarray,
    size: int,
) -> SkeletonXYResult:
    """Compute the Lemma 6.2 x/y matrices by exchanging real messages.

    Inputs mirror :func:`repro.core.skeleton.skeleton_xy_matrices`:
    ``center[u]`` is the compact index of ``c(u)`` and ``center_delta[u]``
    the known ``delta(u, c(u))``.
    """
    n = graph.n
    k = nbr_indices.shape[1]

    # ---- x-values: u -> t messages. ---------------------------------- #
    x_messages: List[Message] = []
    for u in range(n):
        for slot in range(k):
            t = int(nbr_indices[u, slot])
            if t < 0 or not np.isfinite(nbr_values[u, slot]):
                continue
            value = float(center_delta[u] + nbr_values[u, slot])
            x_messages.append(
                Message(u, t, (int(center[u]), value), tag="xy:x")
            )
    x_delivered, x_stats = route_two_phase(x_messages, n)

    # Per-node minimisation, array-native: one minimum.at scatter over all
    # delivered (t, s_a, value) records instead of dict-of-dict merges.
    x_partial = np.full((n, size), INF)
    x_records = [
        (t, message.payload[0], message.payload[1])
        for t in range(n)
        for message in x_delivered.get(t, [])
        if message.tag == "xy:x"
    ]
    if x_records:
        t_arr, s_arr, v_arr = (np.asarray(col) for col in zip(*x_records))
        np.minimum.at(
            x_partial,
            (t_arr.astype(np.int64), s_arr.astype(np.int64)),
            v_arr.astype(np.float64),
        )

    # ---- y-values: v -> neighbour t messages. ------------------------ #
    y_messages: List[Message] = []
    for u, v, w in graph.edges():
        y_messages.append(
            Message(v, u, (int(center[v]), float(w + center_delta[v])), tag="xy:y")
        )
        y_messages.append(
            Message(u, v, (int(center[u]), float(w + center_delta[u])), tag="xy:y")
        )
    y_delivered, y_stats = route_two_phase(y_messages, n)

    y_partial = np.full((n, size), INF)
    # the t = v case is local knowledge: y(t, c(t)) <= delta(t, c(t)).
    np.minimum.at(
        y_partial,
        (np.arange(n), center.astype(np.int64)),
        center_delta.astype(np.float64),
    )
    y_records = [
        (t, message.payload[0], message.payload[1])
        for t in range(n)
        for message in y_delivered.get(t, [])
        if message.tag == "xy:y"
    ]
    if y_records:
        t_arr, s_arr, v_arr = (np.asarray(col) for col in zip(*y_records))
        np.minimum.at(
            y_partial,
            (t_arr.astype(np.int64), s_arr.astype(np.int64)),
            v_arr.astype(np.float64),
        )

    # ---- reporting: t sends each finite x(s_a, t) / y(t, s_b) to the
    # skeleton node (identified here by its compact index; the real model
    # would address the member's ID — a relabeling).  Receive load per
    # skeleton node is O(n). ------------------------------------------- #
    report_messages: List[Message] = []
    for kind, partial in ((0, x_partial), (1, y_partial)):
        t_arr, s_arr = np.nonzero(np.isfinite(partial))
        for t, s_index in zip(t_arr, s_arr):
            report_messages.append(
                Message(
                    int(t),
                    int(s_index) % n,
                    (kind, int(s_index), int(t), float(partial[t, s_index])),
                    tag="xy:report",
                )
            )
    reports_delivered, report_stats = route_two_phase(
        report_messages, n, bandwidth_words=6
    )

    x = np.full((size, n), INF)
    y = np.full((n, size), INF)
    for node in range(n):
        for message in reports_delivered.get(node, []):
            if message.tag != "xy:report":
                continue
            kind, s_index, t, value = message.payload
            if int(kind) == 0:
                x[int(s_index), int(t)] = min(x[int(s_index), int(t)], float(value))
            else:
                y[int(t), int(s_index)] = min(y[int(t), int(s_index)], float(value))
    return SkeletonXYResult(
        x=x,
        y=y,
        x_stats=x_stats,
        y_stats=y_stats,
        report_stats=report_stats,
    )
