"""Message-level computation of the skeleton x/y matrices (Lemma 6.2).

The "Computing the x-values and y-values" paragraph of Section 6.2, as an
actual communication schedule:

* **x-values**: each node ``u`` sends the tuple
  ``(c(u), delta(c(u), u) + delta(u, t))`` to every ``t ∈ ~N_k(u)``;
  each ``t`` takes, per skeleton node ``s_a``, the minimum received second
  component — that *is* ``x(s_a, t)`` — and reports it back to ``s_a``.
* **y-values**: each node ``v`` sends ``(c(v), w_tv + delta(v, c(v)))`` to
  every graph neighbour ``t``; each ``t`` minimises per ``s_b`` and
  reports ``y(t, s_b)`` to ``s_b``; the ``t = v`` case is local.

Both are O(n)-receive-load routed instances.  Every message set is a flat
numpy batch (masked fan-outs over the ``(n, k)`` neighbour table and the
edge arrays) and every per-node minimisation is one ``np.minimum.at``
scatter over the delivered columns — there is no per-message Python in
this schedule at all.  Tests assert the assembled matrices equal
:func:`repro.core.skeleton.skeleton_xy_matrices` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cclique.engine import MessageBatch
from ..cclique.routing import RoutingStats, route_batch_two_phase
from ..graphs.graph import WeightedGraph
from ..semiring.minplus import INF


def _sane_index(values: np.ndarray, limit: int) -> tuple:
    """``(mask, ints)``: which float column entries are valid indices.

    Delivered payloads are untrusted under faults — a corrupted index
    word must not become an out-of-range scatter target.
    """
    finite = np.isfinite(values)
    ints = np.where(finite, values, 0).astype(np.int64)
    return finite & (values == ints) & (ints >= 0) & (ints < limit), ints


@dataclass
class SkeletonXYResult:
    """The x/y matrices plus the measured routing costs."""

    x: np.ndarray  # (|S|, n)
    y: np.ndarray  # (n, |S|)
    x_stats: RoutingStats
    y_stats: RoutingStats
    report_stats: RoutingStats


def run_skeleton_xy_protocol(
    graph: WeightedGraph,
    nbr_indices: np.ndarray,
    nbr_values: np.ndarray,
    center: np.ndarray,
    center_delta: np.ndarray,
    size: int,
    *,
    faults=None,
    max_retries: int = 0,
    recovery=None,
    integrity=None,
) -> SkeletonXYResult:
    """Compute the Lemma 6.2 x/y matrices by exchanging real messages.

    Inputs mirror :func:`repro.core.skeleton.skeleton_xy_matrices`:
    ``center[u]`` is the compact index of ``c(u)`` and ``center_delta[u]``
    the known ``delta(u, c(u))``.  The chaos kwargs thread a fault
    configuration into all three routed instances; lost messages loosen
    the minima (x/y entries stay ``INF``) instead of crashing.
    """
    route_opts = dict(
        faults=faults, max_retries=max_retries,
        recovery=recovery, integrity=integrity,
    )
    n = graph.n
    k = nbr_indices.shape[1]
    center = center.astype(np.int64)
    center_delta = center_delta.astype(np.float64)

    # ---- x-values: u -> t messages (masked (n, k) fan-out). ---------- #
    u_col = np.repeat(np.arange(n, dtype=np.int64), k)
    t_col = nbr_indices.reshape(-1).astype(np.int64)
    value_col = center_delta[u_col] + nbr_values.reshape(-1)
    valid = (t_col >= 0) & np.isfinite(nbr_values.reshape(-1))
    x_batch = MessageBatch(
        src=u_col[valid],
        dst=t_col[valid],
        payload=np.column_stack(
            [center[u_col[valid]].astype(np.float64), value_col[valid]]
        ),
        tag="xy:x",
    )
    x_delivered, x_stats = route_batch_two_phase(x_batch, n, **route_opts)

    # Per-node minimisation: one minimum.at scatter over the delivered
    # (t, s_a, value) columns.
    x_partial = np.full((n, size), INF)
    if len(x_delivered):
        ok, s_idx = _sane_index(x_delivered.payload[:, 0], size)
        np.minimum.at(
            x_partial,
            (x_delivered.dst[ok], s_idx[ok]),
            x_delivered.payload[ok, 1],
        )

    # ---- y-values: v -> neighbour t messages (edge-array fan-out). --- #
    eu, ev, ew = graph.edge_u, graph.edge_v, graph.edge_w
    y_src = np.concatenate([ev, eu]).astype(np.int64)
    y_dst = np.concatenate([eu, ev]).astype(np.int64)
    y_val = np.concatenate([ew, ew]) + center_delta[y_src]
    y_batch = MessageBatch(
        src=y_src,
        dst=y_dst,
        payload=np.column_stack([center[y_src].astype(np.float64), y_val]),
        tag="xy:y",
    )
    y_delivered, y_stats = route_batch_two_phase(y_batch, n, **route_opts)

    y_partial = np.full((n, size), INF)
    # the t = v case is local knowledge: y(t, c(t)) <= delta(t, c(t)).
    np.minimum.at(y_partial, (np.arange(n), center), center_delta)
    if len(y_delivered):
        ok, s_idx = _sane_index(y_delivered.payload[:, 0], size)
        np.minimum.at(
            y_partial,
            (y_delivered.dst[ok], s_idx[ok]),
            y_delivered.payload[ok, 1],
        )

    # ---- reporting: t sends each finite x(s_a, t) / y(t, s_b) to the
    # skeleton node (identified here by its compact index; the real model
    # would address the member's ID — a relabeling).  Receive load per
    # skeleton node is O(n). ------------------------------------------- #
    xt, xs = np.nonzero(np.isfinite(x_partial))
    yt, ys = np.nonzero(np.isfinite(y_partial))
    report_batch = MessageBatch(
        src=np.concatenate([xt, yt]).astype(np.int64),
        dst=(np.concatenate([xs, ys]) % n).astype(np.int64),
        payload=np.column_stack(
            [
                np.r_[np.zeros(len(xt)), np.ones(len(yt))],  # kind
                np.concatenate([xs, ys]).astype(np.float64),
                np.concatenate([xt, yt]).astype(np.float64),
                np.r_[x_partial[xt, xs], y_partial[yt, ys]],
            ]
        ),
        tag="xy:report",
    )
    reports, report_stats = route_batch_two_phase(
        report_batch, n, bandwidth_words=6, **route_opts
    )

    x = np.full((size, n), INF)
    y = np.full((n, size), INF)
    if len(reports):
        kind_ok, kind = _sane_index(reports.payload[:, 0], 2)
        s_ok, s_index = _sane_index(reports.payload[:, 1], size)
        t_ok, t_index = _sane_index(reports.payload[:, 2], n)
        value = reports.payload[:, 3]
        good = kind_ok & s_ok & t_ok
        is_x = good & (kind == 0)
        is_y = good & (kind == 1)
        np.minimum.at(x, (s_index[is_x], t_index[is_x]), value[is_x])
        np.minimum.at(y, (t_index[is_y], s_index[is_y]), value[is_y])
    return SkeletonXYResult(
        x=x,
        y=y,
        x_stats=x_stats,
        y_stats=y_stats,
        report_stats=report_stats,
    )
