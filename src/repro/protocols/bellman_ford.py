"""A complete distributed APSP protocol: synchronous Bellman-Ford gossip.

Not part of the paper's algorithm — it is the *contrast*: the naive
distributed APSP whose round complexity grows with the hop diameter and
per-node state churn, against which the paper's O(1)-round building
blocks are measured.

Two renderings share the same schedule:

* :class:`BellmanFordProgram` — the per-node :class:`~repro.cclique.model.
  NodeProgram`, kept as the pedagogical object-plane version;
* :func:`run_distributed_bellman_ford` — the array-plane driver: each
  round, every node's pending ``(target, distance)`` batch is shipped to
  all its neighbours as **one** staged numpy batch, and all relaxations
  happen in a single ``np.minimum.at`` scatter.  Same horizon, same batch
  discipline, orders of magnitude less Python per round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cclique.engine import ArrayClique
from ..cclique.model import NodeProgram
from ..graphs.graph import WeightedGraph


class BellmanFordProgram(NodeProgram):
    """Relax on everything heard; gossip changed estimates to neighbours.

    Each round a node ships up to ``batch`` changed ``(target, distance)``
    pairs to every neighbour in one message; the clique must be created
    with ``bandwidth_words >= 2 * batch``.  Nodes halt at a fixed horizon
    of ``horizon_factor * n`` rounds, which suffices for convergence on
    the graph sizes the simulator is meant for (tests verify exactness).
    """

    def __init__(
        self,
        weights: Dict[int, float],
        n: int,
        batch: int = 8,
        horizon_factor: int = 2,
    ) -> None:
        super().__init__()
        self.weights = dict(weights)
        self.dist: Dict[int, float] = {}
        self.pending: List[Tuple[int, float]] = []
        self.batch = int(batch)
        self.horizon = max(2, horizon_factor * n)
        self.rounds_seen = 0

    def on_round(self, inbox):
        if not self.dist:
            self.dist = {self.node_id: 0.0}
            self.pending = [(self.node_id, 0.0)]
        for message in inbox:
            weight = self.weights.get(message.sender)
            if weight is None:
                continue
            pairs = message.payload
            for index in range(0, len(pairs), 2):
                target = int(pairs[index])
                through = float(pairs[index + 1])
                candidate = through + weight
                if candidate < self.dist.get(target, float("inf")):
                    self.dist[target] = candidate
                    self.pending.append((target, candidate))
        out = []
        if self.pending:
            shipped = self.pending[: self.batch]
            self.pending = self.pending[self.batch :]
            payload = tuple(x for pair in shipped for x in pair)
            out = [
                self.msg(neighbour, *payload, tag="bf")
                for neighbour in self.weights
            ]
        self.rounds_seen += 1
        if self.rounds_seen >= self.horizon:
            self.halt()
        return out


@dataclass
class BellmanFordRun:
    """Result of a full distributed Bellman-Ford execution.

    ``fault_totals`` is the injection ledger summary when the run was
    executed under a :class:`~repro.cclique.faults.FaultPlan`.
    """

    estimate: np.ndarray
    rounds: int
    fault_totals: Optional[Dict[str, int]] = None


def run_distributed_bellman_ford(
    graph: WeightedGraph,
    batch: int = 8,
    horizon_factor: int = 2,
    faults=None,
) -> BellmanFordRun:
    """Run the gossip protocol on the array plane; return the APSP matrix.

    Per round, each node with pending updates stages one ``2 * batch``-word
    message per neighbour (unused slots padded with a ``-1`` sentinel and
    not charged), all nodes in one flat batch; the relaxation over every
    delivered ``(target, distance)`` pair is one vectorized scatter-min.

    ``faults`` optionally attaches a fault plan to the underlying clique
    (see :mod:`repro.cclique.faults`); the gossip schedule is unchanged —
    whatever survives injection is relaxed, making this the chaos
    harness's protocol-level measurement target.
    """
    if graph.directed:
        raise ValueError("the gossip protocol assumes undirected edges")
    n = graph.n
    batch = int(batch)
    horizon = max(2, int(horizon_factor) * n)
    clique = ArrayClique(n, bandwidth_words=2 * batch, strict=False)
    if faults is not None:
        clique.attach_faults(faults)
    weight_matrix = graph.matrix()  # W[v, u] = edge weight, inf if absent
    # neighbour lists as flat columns for the per-round fan-out
    adjacency = graph.adjacency()
    nbr_of = [np.asarray([v for v, _ in adjacency[u]], dtype=np.int64) for u in range(n)]

    dist = np.full((n, n), np.inf)
    np.fill_diagonal(dist, 0.0)
    # Per-node FIFO of (target, distance) pairs awaiting gossip.
    queues: List[List[Tuple[int, float]]] = [[(u, 0.0)] for u in range(n)]

    for _ in range(horizon):
        # Ship: one padded payload row per (node, neighbour).
        senders = [u for u in range(n) if queues[u] and len(nbr_of[u])]
        if senders:
            rows = []
            for u in senders:
                shipped = queues[u][:batch]
                queues[u] = queues[u][batch:]
                row = np.full(2 * batch, -1.0)
                flat = np.asarray([x for pair in shipped for x in pair])
                row[: len(flat)] = flat
                rows.append(row)
            payload = np.stack(rows)
            degrees = np.asarray([len(nbr_of[u]) for u in senders])
            src = np.repeat(np.asarray(senders, dtype=np.int64), degrees)
            dst = np.concatenate([nbr_of[u] for u in senders])
            clique.stage(
                src, dst, payload[np.repeat(np.arange(len(senders)), degrees)],
                words=2 * batch, tag="bf",
            )
        clique.step()

        # Relax: every delivered (target, distance) pair in one scatter.
        node, view = clique.collect()
        if len(view):
            pairs = view.payload.reshape(len(view), -1, 2)
            targets = pairs[:, :, 0]
            through = pairs[:, :, 1]
            # Upper bound guards against corrupted target words: a
            # garbage index must not crash the relaxation scatter.
            valid = (targets >= 0) & (targets < n)
            rows_idx, slot_idx = np.nonzero(valid)
            if len(rows_idx):
                receiver = node[rows_idx]
                target = targets[rows_idx, slot_idx].astype(np.int64)
                candidate = (
                    through[rows_idx, slot_idx]
                    + weight_matrix[receiver, view.src[rows_idx]]
                )
                old = dist[receiver, target]
                improved = candidate < old
                if improved.any():
                    receiver_i = receiver[improved]
                    target_i = target[improved]
                    candidate_i = candidate[improved]
                    np.minimum.at(dist, (receiver_i, target_i), candidate_i)
                    # Enqueue each receiver's improved pairs (deduplicated
                    # per round, best value wins) for onward gossip.
                    key = receiver_i * n + target_i
                    order = np.lexsort((candidate_i, key))
                    keep = np.r_[True, key[order][1:] != key[order][:-1]]
                    for idx in order[keep]:
                        queues[int(receiver_i[idx])].append(
                            (int(target_i[idx]), float(dist[receiver_i[idx], target_i[idx]]))
                        )

    totals = None
    if clique.faults is not None:
        totals = clique.faults.trace.summary()
    return BellmanFordRun(estimate=dist, rounds=horizon, fault_totals=totals)
