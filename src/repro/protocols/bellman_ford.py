"""A complete distributed APSP protocol: synchronous Bellman-Ford gossip.

Not part of the paper's algorithm — it is the *contrast*: the naive
distributed APSP whose round complexity grows with the hop diameter and
per-node state churn, against which the paper's O(1)-round building
blocks are measured.  Written as a :class:`~repro.cclique.model.
NodeProgram` so it runs bit-for-bit on the message-level simulator, and
used by tests and the ``message_level_simulation`` example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..cclique.model import NodeProgram, SimulatedClique
from ..graphs.graph import WeightedGraph


class BellmanFordProgram(NodeProgram):
    """Relax on everything heard; gossip changed estimates to neighbours.

    Each round a node ships up to ``batch`` changed ``(target, distance)``
    pairs to every neighbour in one message; the clique must be created
    with ``bandwidth_words >= 2 * batch``.  Nodes halt at a fixed horizon
    of ``horizon_factor * n`` rounds, which suffices for convergence on
    the graph sizes the simulator is meant for (tests verify exactness).
    """

    def __init__(
        self,
        weights: Dict[int, float],
        n: int,
        batch: int = 8,
        horizon_factor: int = 2,
    ) -> None:
        super().__init__()
        self.weights = dict(weights)
        self.dist: Dict[int, float] = {}
        self.pending: List[Tuple[int, float]] = []
        self.batch = int(batch)
        self.horizon = max(2, horizon_factor * n)
        self.rounds_seen = 0

    def on_round(self, inbox):
        if not self.dist:
            self.dist = {self.node_id: 0.0}
            self.pending = [(self.node_id, 0.0)]
        for message in inbox:
            weight = self.weights.get(message.sender)
            if weight is None:
                continue
            pairs = message.payload
            for index in range(0, len(pairs), 2):
                target = int(pairs[index])
                through = float(pairs[index + 1])
                candidate = through + weight
                if candidate < self.dist.get(target, float("inf")):
                    self.dist[target] = candidate
                    self.pending.append((target, candidate))
        out = []
        if self.pending:
            shipped = self.pending[: self.batch]
            self.pending = self.pending[self.batch :]
            payload = tuple(x for pair in shipped for x in pair)
            out = [
                self.msg(neighbour, *payload, tag="bf")
                for neighbour in self.weights
            ]
        self.rounds_seen += 1
        if self.rounds_seen >= self.horizon:
            self.halt()
        return out


@dataclass
class BellmanFordRun:
    """Result of a full distributed Bellman-Ford execution."""

    estimate: np.ndarray
    rounds: int


def run_distributed_bellman_ford(
    graph: WeightedGraph,
    batch: int = 8,
    horizon_factor: int = 2,
) -> BellmanFordRun:
    """Run the gossip protocol on the simulator; return the APSP matrix."""
    if graph.directed:
        raise ValueError("the gossip protocol assumes undirected edges")
    n = graph.n
    clique = SimulatedClique(n, bandwidth_words=2 * batch, strict=False)
    adjacency = graph.adjacency()
    programs = [
        BellmanFordProgram(
            {v: w for v, w in adjacency[u]}, n, batch=batch,
            horizon_factor=horizon_factor,
        )
        for u in range(n)
    ]
    rounds = clique.run(programs, max_rounds=100 * n + 100)
    estimate = np.full((n, n), np.inf)
    for u, program in enumerate(programs):
        for target, value in program.dist.items():
            estimate[u, target] = value
    return BellmanFordRun(estimate=estimate, rounds=rounds)
