"""Message-level implementation of the Section 4.1 hopset algorithm.

:func:`repro.core.hopsets.build_knearest_hopset` executes the algorithm's
data flow globally and charges rounds on the ledger.  This module runs the
*same* algorithm as an actual communication schedule on the
:class:`~repro.cclique.model.SimulatedClique`:

1. every node ``v`` locally selects its approximate k-nearest set from its
   row of ``delta`` (local knowledge — each node knows its distances);
2. ``v`` sends a request to each ``u ∈ ~N_k(v)`` (one message per pair);
3. each ``u`` answers every requester with its ``k`` shortest outgoing
   edges, shipped through the two-phase router (the Lemma 2.2 instance:
   each node receives ``k^2 ∈ O(n)`` edge records);
4. ``v`` runs its local Dijkstra and announces each hopset edge to the
   other endpoint (one more routed instance).

The test suite asserts the resulting hopset is *identical* (same edges,
same weights) to the global implementation — the cross-validation that
the ledger layer charges rounds for a schedule that genuinely exists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..cclique.message import Message
from ..cclique.routing import RoutingStats, route_two_phase
from ..core.hopsets import _local_dijkstra
from ..graphs.graph import WeightedGraph
from ..semiring.minplus import k_smallest_in_rows


@dataclass
class HopsetProtocolResult:
    """Outcome of the message-level hopset construction."""

    hopset: WeightedGraph
    rounds: int
    request_stats: RoutingStats
    edge_stats: RoutingStats
    notify_stats: RoutingStats


def run_hopset_protocol(
    graph: WeightedGraph,
    delta: np.ndarray,
    k: int | None = None,
) -> HopsetProtocolResult:
    """Execute Section 4.1 as messages; return the hopset and round counts.

    Suitable for small ``n`` (the simulator is per-message); the output is
    bit-identical to :func:`repro.core.hopsets.build_knearest_hopset` with
    the same ``k``.
    """
    n = graph.n
    delta = np.asarray(delta, dtype=np.float64)
    if delta.shape != (n, n):
        raise ValueError("delta must be (n, n)")
    if k is None:
        k = max(1, math.isqrt(n - 1) + 1) if n > 1 else 1
    k = int(min(k, n))

    # Step 1 (local): approximate k-nearest sets.
    nearest, _ = k_smallest_in_rows(delta, k)

    # Step 2a: requests v -> u (one word per ordered pair at most).
    requests = []
    for v in range(n):
        for u in nearest[v]:
            if u >= 0:
                requests.append(Message(v, int(u), (v,), tag="hopset:req"))
    delivered, request_stats = route_two_phase(requests, n)

    # Step 2b: each u answers each requester with its k shortest outgoing
    # edges (k messages of 3 words per requester; receive load k^2 = O(n)).
    replies = []
    short_edges: List[List[Tuple[int, float]]] = [
        graph.k_shortest_out_edges(u, k) for u in range(n)
    ]
    for u in range(n):
        requesters = {m.payload[0] for m in delivered.get(u, []) if m.tag == "hopset:req"}
        for v in requesters:
            for endpoint, weight in short_edges[u]:
                replies.append(
                    Message(u, int(v), (u, endpoint, weight), tag="hopset:edge")
                )
    edges_delivered, edge_stats = route_two_phase(replies, n)

    # Step 3 (local): Dijkstra on the received edges + own outgoing edges.
    adjacency = graph.adjacency()
    hopset_edges: List[Tuple[int, int, float]] = []
    notifications = []
    for v in range(n):
        local: Dict[int, List[Tuple[int, float]]] = {v: list(adjacency[v])}
        for message in edges_delivered.get(v, []):
            if message.tag != "hopset:edge":
                continue
            source, endpoint, weight = message.payload
            local.setdefault(int(source), []).append((int(endpoint), float(weight)))
        dist = _local_dijkstra(local, v)
        for u, d_vu in dist.items():
            if u != v and math.isfinite(d_vu):
                hopset_edges.append((v, int(u), float(d_vu)))
                notifications.append(
                    Message(v, int(u), (v, d_vu), tag="hopset:new-edge")
                )

    # Step 4: inform the other endpoint of each hopset edge.
    _, notify_stats = route_two_phase(notifications, n)

    hopset = WeightedGraph(
        n,
        hopset_edges,
        directed=graph.directed,
        require_positive=False,
        require_integer=False,
    )
    rounds = request_stats.rounds + edge_stats.rounds + notify_stats.rounds
    return HopsetProtocolResult(
        hopset=hopset,
        rounds=rounds,
        request_stats=request_stats,
        edge_stats=edge_stats,
        notify_stats=notify_stats,
    )
