"""Message-level implementation of the Section 4.1 hopset algorithm.

:func:`repro.core.hopsets.build_knearest_hopset` executes the algorithm's
data flow globally and charges rounds on the ledger.  This module runs the
*same* algorithm as an actual communication schedule on the array-native
communication plane:

1. every node ``v`` locally selects its approximate k-nearest set from its
   row of ``delta`` (local knowledge — each node knows its distances);
2. ``v`` sends a request to each ``u ∈ ~N_k(v)`` (one message per pair);
3. each ``u`` answers every requester with its ``k`` shortest outgoing
   edges, shipped through the two-phase router (the Lemma 2.2 instance:
   each node receives ``k^2 ∈ O(n)`` edge records);
4. ``v`` runs its local Dijkstra and announces each hopset edge to the
   other endpoint (one more routed instance).

Every step's messages are staged as one flat numpy batch (requests are a
masked ``(n, k)`` fan-out, replies a ``repeat``-expanded cross product of
requesters and edge lists) and routed with
:func:`~repro.cclique.routing.route_batch_two_phase`.

The test suite asserts the resulting hopset is *identical* (same edges,
same weights) to the global implementation — the cross-validation that
the ledger layer charges rounds for a schedule that genuinely exists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..cclique.engine import MessageBatch
from ..cclique.routing import RoutingStats, route_batch_two_phase
from ..graphs.adjacency import batched_sssp, k_lightest_per_row
from ..graphs.graph import WeightedGraph
from ..semiring.minplus import k_smallest_in_rows


@dataclass
class HopsetProtocolResult:
    """Outcome of the message-level hopset construction."""

    hopset: WeightedGraph
    rounds: int
    request_stats: RoutingStats
    edge_stats: RoutingStats
    notify_stats: RoutingStats


def run_hopset_protocol(
    graph: WeightedGraph,
    delta: np.ndarray,
    k: int | None = None,
    *,
    faults=None,
    max_retries: int = 0,
    recovery=None,
    integrity=None,
) -> HopsetProtocolResult:
    """Execute Section 4.1 as messages; return the hopset and round counts.

    The output is bit-identical to
    :func:`repro.core.hopsets.build_knearest_hopset` with the same ``k``
    — when the fabric is clean.  ``faults``/``max_retries``/``recovery``/
    ``integrity`` thread a chaos configuration into all three routed
    instances (see :func:`~repro.cclique.routing.route_batch_two_phase`);
    lost requests or replies shrink the hopset instead of crashing it.
    """
    route_opts = dict(
        faults=faults, max_retries=max_retries,
        recovery=recovery, integrity=integrity,
    )
    n = graph.n
    delta = np.asarray(delta, dtype=np.float64)
    if delta.shape != (n, n):
        raise ValueError("delta must be (n, n)")
    if k is None:
        k = max(1, math.isqrt(n - 1) + 1) if n > 1 else 1
    k = int(min(k, n))

    # Step 1 (local): approximate k-nearest sets.
    nearest, _ = k_smallest_in_rows(delta, k)

    # Step 2a: requests v -> u (one word per ordered pair at most),
    # a masked (n, k) fan-out staged as one batch.
    req_src = np.repeat(np.arange(n, dtype=np.int64), k)
    req_dst = nearest.reshape(-1).astype(np.int64)
    valid = req_dst >= 0
    requests = MessageBatch(
        src=req_src[valid],
        dst=req_dst[valid],
        payload=req_src[valid].astype(np.float64).reshape(-1, 1),
        tag="hopset:req",
    )
    req_delivery, request_stats = route_batch_two_phase(requests, n, **route_opts)

    # Step 2b: each u answers each requester with its k shortest outgoing
    # edges (k messages of 3 words per requester; receive load k^2 = O(n)).
    # The reply set is the requester rows expanded k-fold against u's list.
    se_idx, se_w = k_lightest_per_row(graph.csr(), k)
    answerer = req_delivery.dst  # the u of each delivered request row
    requester_f = req_delivery.payload[:, 0]
    # Delivered payloads are untrusted under faults: a corrupted
    # requester id must not become an out-of-range destination.
    sane = np.isfinite(requester_f)
    requester = np.where(sane, requester_f, 0).astype(np.int64)
    sane &= (requester_f == requester) & (requester >= 0) & (requester < n)
    answerer = answerer[sane]
    requester = requester[sane]
    reply_src = np.repeat(answerer, k)
    reply_dst = np.repeat(requester, k)
    endpoints = se_idx[answerer].reshape(-1)
    weights = se_w[answerer].reshape(-1)
    keep = endpoints >= 0
    replies = MessageBatch(
        src=reply_src[keep],
        dst=reply_dst[keep],
        payload=np.column_stack(
            [reply_src[keep].astype(np.float64), endpoints[keep], weights[keep]]
        ),
        tag="hopset:edge",
    )
    edge_delivery, edge_stats = route_batch_two_phase(replies, n, **route_opts)

    # Step 3 (local): exact SSSP on the received edges + own outgoing
    # edges.  Each node's subgraph (its block) is assembled as arrays and
    # the local computations are solved by block-diagonal dijkstra calls —
    # the same batched engine the global construction uses, with sources
    # chunked the same way so the dense dijkstra output stays a few MB.
    csr = graph.csr()
    dist = np.empty((n, n), dtype=np.float64)
    chunk_nodes = 8 if n >= 256 else 16
    for lo in range(0, n, chunk_nodes):
        chunk = np.arange(lo, min(n, lo + chunk_nodes), dtype=np.int64)
        own_src, own_dst, own_w = csr.rows_of(chunk)
        blocks = [own_src - lo]
        srcs = [own_src]
        dsts = [own_dst]
        wgts = [own_w]
        for v in chunk:
            r_src, r_payload = edge_delivery.for_node(int(v))
            if not len(r_src):
                continue
            # Same untrusted-payload discipline: drop edge records whose
            # endpoints fell outside the node range or whose weight went
            # non-finite (possible under PayloadCorrupt without
            # integrity checksums).
            a_f, b_f, w_col = r_payload[:, 0], r_payload[:, 1], r_payload[:, 2]
            good = np.isfinite(a_f) & np.isfinite(b_f) & ~np.isnan(w_col)
            a_i = np.where(good, a_f, 0).astype(np.int64)
            b_i = np.where(good, b_f, 0).astype(np.int64)
            good &= (a_f == a_i) & (a_i >= 0) & (a_i < n)
            good &= (b_f == b_i) & (b_i >= 0) & (b_i < n)
            good &= w_col >= 0
            if not good.any():
                continue
            idx = np.flatnonzero(good)
            blocks.append(np.full(len(idx), v - lo, dtype=np.int64))
            srcs.append(a_i[idx])
            dsts.append(b_i[idx])
            wgts.append(w_col[idx])
        dist[chunk] = batched_sssp(
            n,
            np.concatenate(srcs),
            np.concatenate(dsts),
            np.concatenate(wgts),
            np.concatenate(blocks),
            chunk,
        )
    reached = np.isfinite(dist)
    np.fill_diagonal(reached, False)
    v_arr, u_arr = np.nonzero(reached)

    # Step 4: inform the other endpoint of each hopset edge.
    notifications = MessageBatch(
        src=v_arr.astype(np.int64),
        dst=u_arr.astype(np.int64),
        payload=np.column_stack(
            [v_arr.astype(np.float64), dist[v_arr, u_arr]]
        ),
        tag="hopset:new-edge",
    )
    _, notify_stats = route_batch_two_phase(notifications, n, **route_opts)

    hopset = WeightedGraph.from_arrays(
        n,
        v_arr.astype(np.int64),
        u_arr.astype(np.int64),
        dist[v_arr, u_arr],
        directed=graph.directed,
        require_positive=False,
        require_integer=False,
    )
    rounds = request_stats.rounds + edge_stats.rounds + notify_stats.rounds
    return HopsetProtocolResult(
        hopset=hopset,
        rounds=rounds,
        request_stats=request_stats,
        edge_stats=edge_stats,
        notify_stats=notify_stats,
    )
