"""Message-level implementation of the Section 4.1 hopset algorithm.

:func:`repro.core.hopsets.build_knearest_hopset` executes the algorithm's
data flow globally and charges rounds on the ledger.  This module runs the
*same* algorithm as an actual communication schedule on the
:class:`~repro.cclique.model.SimulatedClique`:

1. every node ``v`` locally selects its approximate k-nearest set from its
   row of ``delta`` (local knowledge — each node knows its distances);
2. ``v`` sends a request to each ``u ∈ ~N_k(v)`` (one message per pair);
3. each ``u`` answers every requester with its ``k`` shortest outgoing
   edges, shipped through the two-phase router (the Lemma 2.2 instance:
   each node receives ``k^2 ∈ O(n)`` edge records);
4. ``v`` runs its local Dijkstra and announces each hopset edge to the
   other endpoint (one more routed instance).

The test suite asserts the resulting hopset is *identical* (same edges,
same weights) to the global implementation — the cross-validation that
the ledger layer charges rounds for a schedule that genuinely exists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..cclique.message import Message
from ..cclique.routing import RoutingStats, route_two_phase
from ..graphs.adjacency import batched_sssp, k_lightest_per_row
from ..graphs.graph import WeightedGraph
from ..semiring.minplus import k_smallest_in_rows


@dataclass
class HopsetProtocolResult:
    """Outcome of the message-level hopset construction."""

    hopset: WeightedGraph
    rounds: int
    request_stats: RoutingStats
    edge_stats: RoutingStats
    notify_stats: RoutingStats


def run_hopset_protocol(
    graph: WeightedGraph,
    delta: np.ndarray,
    k: int | None = None,
) -> HopsetProtocolResult:
    """Execute Section 4.1 as messages; return the hopset and round counts.

    Suitable for small ``n`` (the simulator is per-message); the output is
    bit-identical to :func:`repro.core.hopsets.build_knearest_hopset` with
    the same ``k``.
    """
    n = graph.n
    delta = np.asarray(delta, dtype=np.float64)
    if delta.shape != (n, n):
        raise ValueError("delta must be (n, n)")
    if k is None:
        k = max(1, math.isqrt(n - 1) + 1) if n > 1 else 1
    k = int(min(k, n))

    # Step 1 (local): approximate k-nearest sets.
    nearest, _ = k_smallest_in_rows(delta, k)

    # Step 2a: requests v -> u (one word per ordered pair at most).
    requests = []
    for v in range(n):
        for u in nearest[v]:
            if u >= 0:
                requests.append(Message(v, int(u), (v,), tag="hopset:req"))
    delivered, request_stats = route_two_phase(requests, n)

    # Step 2b: each u answers each requester with its k shortest outgoing
    # edges (k messages of 3 words per requester; receive load k^2 = O(n)).
    replies = []
    se_idx, se_w = k_lightest_per_row(graph.csr(), k)
    for u in range(n):
        requesters = {m.payload[0] for m in delivered.get(u, []) if m.tag == "hopset:req"}
        row_idx, row_w = se_idx[u], se_w[u]
        for v in requesters:
            for endpoint, weight in zip(row_idx, row_w):
                if endpoint < 0:
                    continue
                replies.append(
                    Message(
                        u, int(v), (u, int(endpoint), float(weight)),
                        tag="hopset:edge",
                    )
                )
    edges_delivered, edge_stats = route_two_phase(replies, n)

    # Step 3 (local): exact SSSP on the received edges + own outgoing
    # edges.  Each node's subgraph (its block) is assembled as arrays and
    # the local computations are solved by block-diagonal dijkstra calls —
    # the same batched engine the global construction uses, with sources
    # chunked the same way so the dense dijkstra output stays a few MB.
    csr = graph.csr()
    received_by_node = [
        [m.payload for m in edges_delivered.get(v, []) if m.tag == "hopset:edge"]
        for v in range(n)
    ]
    dist = np.empty((n, n), dtype=np.float64)
    chunk_nodes = 8 if n >= 256 else 16
    for lo in range(0, n, chunk_nodes):
        chunk = np.arange(lo, min(n, lo + chunk_nodes), dtype=np.int64)
        own_src, own_dst, own_w = csr.rows_of(chunk)
        blocks = [own_src - lo]
        srcs = [own_src]
        dsts = [own_dst]
        wgts = [own_w]
        for v in chunk:
            received = received_by_node[v]
            if not received:
                continue
            blocks.append(np.full(len(received), v - lo, dtype=np.int64))
            srcs.append(np.asarray([p[0] for p in received], dtype=np.int64))
            dsts.append(np.asarray([p[1] for p in received], dtype=np.int64))
            wgts.append(np.asarray([p[2] for p in received], dtype=np.float64))
        dist[chunk] = batched_sssp(
            n,
            np.concatenate(srcs),
            np.concatenate(dsts),
            np.concatenate(wgts),
            np.concatenate(blocks),
            chunk,
        )
    reached = np.isfinite(dist)
    np.fill_diagonal(reached, False)
    hopset_edges: List[Tuple[int, int, float]] = []
    notifications = []
    for v, u in zip(*np.nonzero(reached)):
        d_vu = float(dist[v, u])
        hopset_edges.append((int(v), int(u), d_vu))
        notifications.append(
            Message(int(v), int(u), (int(v), d_vu), tag="hopset:new-edge")
        )

    # Step 4: inform the other endpoint of each hopset edge.
    _, notify_stats = route_two_phase(notifications, n)

    hopset = WeightedGraph(
        n,
        hopset_edges,
        directed=graph.directed,
        require_positive=False,
        require_integer=False,
    )
    rounds = request_stats.rounds + edge_stats.rounds + notify_stats.rounds
    return HopsetProtocolResult(
        hopset=hopset,
        rounds=rounds,
        request_stats=request_stats,
        edge_stats=edge_stats,
        notify_stats=notify_stats,
    )
