"""Message-level implementation of the Appendix A zero-weight reduction.

Theorem 2.1's supporting algorithm, as an actual communication schedule:

1. the minimum spanning forest is computed (here: Borůvka, charged O(1)
   per [Now21]) and **broadcast** — [Now21] guarantees every node learns
   the whole MST, which we realise with the Section 2.3 broadcast trick,
   ``ceil((n-1)/n)`` batches of 3-word edge records;
2. every node locally filters the zero-weight forest edges and labels the
   zero-components (leaders = smallest member IDs);
3. every node sends, to each leader ``t``, the pair ``(s, w)`` — its own
   leader and its lightest edge into ``t``'s component (one message per
   (node, leader) pair, as in the appendix);
4. leaders take minima: the compressed graph's edge weights.

The per-(node, leader) lightest-edge selection and the leaders' minima are
group-min reductions over flat edge columns, and the exchange itself is a
single routed :class:`~repro.cclique.engine.MessageBatch`.  Tests assert
the compressed graph equals the global implementation's
(:func:`repro.core.zero_weights.compress_zero_components`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..cclique.engine import MessageBatch
from ..cclique.routing import RoutingStats, route_batch_two_phase
from ..graphs.graph import WeightedGraph
from ..mst.boruvka import DisjointSets, minimum_spanning_forest


@dataclass
class ZeroWeightProtocolResult:
    """Outcome of the message-level Appendix A reduction."""

    leader: np.ndarray
    leaders: np.ndarray
    compressed: WeightedGraph
    broadcast_rounds: int
    exchange_stats: RoutingStats


def _group_min(keys: np.ndarray, values: np.ndarray) -> tuple:
    """Per-unique-key minimum of ``values``; returns (unique_keys, minima)."""
    if not len(keys):
        return keys, values
    order = np.lexsort((values, keys))
    sorted_keys = keys[order]
    first = np.r_[True, sorted_keys[1:] != sorted_keys[:-1]]
    return sorted_keys[first], values[order][first]


def run_zero_weight_protocol(
    graph: WeightedGraph,
    *,
    faults=None,
    max_retries: int = 0,
    recovery=None,
    integrity=None,
) -> ZeroWeightProtocolResult:
    """Execute Appendix A steps 1-3 as messages; return the compressed graph.

    The chaos kwargs thread a fault configuration into the routed
    exchange (step 3); a lost lightest-edge message shows up as a
    missing or heavier compressed edge, never a crash.
    """
    if graph.directed:
        raise ValueError("the zero-weight reduction is for undirected graphs")
    n = graph.n

    # Step 1: MSF + broadcast.  Each edge record is 3 words; the forest has
    # at most n-1 edges, so one batch of the 2-round broadcast trick per
    # ceil(3 (n-1) / n) = 3 words-per-slot... conservatively we ship one
    # edge per slot (n slots per batch).
    forest = minimum_spanning_forest(graph)
    batches = max(1, math.ceil(len(forest) / max(1, n)))
    broadcast_rounds = 2 * batches

    # Step 2 (local, identical at every node): zero components + leaders.
    sets = DisjointSets(n)
    for u, v, w in forest:
        if w == 0:
            sets.union(u, v)
    roots = np.array([sets.find(v) for v in range(n)], dtype=np.int64)
    minimum = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(minimum, roots, np.arange(n, dtype=np.int64))
    leader = minimum[roots]
    leaders = np.unique(leader)
    compact = np.full(n, -1, dtype=np.int64)
    compact[leaders] = np.arange(len(leaders))

    # Step 3: each node v sends (own leader, lightest edge weight into
    # C(t)) to every leader t it has an edge into — a group-min over the
    # edge columns, then one routed batch.
    eu, ev, ew = graph.edge_u, graph.edge_v, graph.edge_w
    cross = leader[eu] != leader[ev]
    senders = np.concatenate([eu[cross], ev[cross]])
    targets = np.concatenate([leader[ev[cross]], leader[eu[cross]]])
    weights = np.concatenate([ew[cross], ew[cross]])
    pair_key = senders * n + targets
    unique_pairs, lightest = _group_min(pair_key, weights.astype(np.float64))
    msg_src = unique_pairs // n
    msg_dst = unique_pairs % n
    batch = MessageBatch(
        src=msg_src,
        dst=msg_dst,
        payload=np.column_stack(
            [leader[msg_src].astype(np.float64), lightest]
        ),
        tag="zw",
    )
    delivered, stats = route_batch_two_phase(
        batch, n, faults=faults, max_retries=max_retries,
        recovery=recovery, integrity=integrity,
    )

    # Step 4 (at the leaders): minima per (source, target) component pair.
    # Delivered payloads are untrusted under faults: only structurally
    # valid rows (leader id names an actual leader, weight a positive
    # integer) enter the compressed graph.
    if len(delivered):
        source_f = delivered.payload[:, 0]
        weight_f = delivered.payload[:, 1]
        ok = np.isfinite(source_f) & np.isfinite(weight_f)
        source_i = np.where(ok, source_f, 0).astype(np.int64)
        ok &= (source_f == source_i) & (source_i >= 0) & (source_i < n)
        ok &= compact[np.clip(source_i, 0, n - 1)] >= 0
        ok &= (weight_f > 0) & (weight_f == np.floor(weight_f))
        delivered_dst = delivered.dst[ok]
        source_i = source_i[ok]
        weight_f = weight_f[ok]
        source_compact = compact[source_i]
        target_compact = compact[delivered_dst]
        a = np.minimum(source_compact, target_compact)
        b = np.maximum(source_compact, target_compact)
        edge_key, edge_w = _group_min(
            a * len(leaders) + b, weight_f
        )
        compressed = WeightedGraph.from_arrays(
            max(1, len(leaders)),
            edge_key // len(leaders),
            edge_key % len(leaders),
            edge_w,
            require_positive=True,
            require_integer=True,
        )
    else:
        compressed = WeightedGraph(max(1, len(leaders)), [],
                                   require_positive=True, require_integer=True)
    return ZeroWeightProtocolResult(
        leader=leader,
        leaders=leaders,
        compressed=compressed,
        broadcast_rounds=broadcast_rounds,
        exchange_stats=stats,
    )
