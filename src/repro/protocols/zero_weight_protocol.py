"""Message-level implementation of the Appendix A zero-weight reduction.

Theorem 2.1's supporting algorithm, as an actual communication schedule:

1. the minimum spanning forest is computed (here: Borůvka, charged O(1)
   per [Now21]) and **broadcast** — [Now21] guarantees every node learns
   the whole MST, which we realise with the Section 2.3 broadcast trick,
   ``ceil((n-1)/n)`` batches of 3-word edge records;
2. every node locally filters the zero-weight forest edges and labels the
   zero-components (leaders = smallest member IDs);
3. every node sends, to each leader ``t``, the pair ``(s, w)`` — its own
   leader and its lightest edge into ``t``'s component (one message per
   (node, leader) pair, as in the appendix);
4. leaders take minima: the compressed graph's edge weights.

Tests assert the compressed graph equals the global implementation's
(:func:`repro.core.zero_weights.compress_zero_components`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..cclique.message import Message
from ..cclique.model import SimulatedClique
from ..cclique.routing import RoutingStats, route_two_phase
from ..graphs.graph import WeightedGraph
from ..mst.boruvka import DisjointSets, minimum_spanning_forest


@dataclass
class ZeroWeightProtocolResult:
    """Outcome of the message-level Appendix A reduction."""

    leader: np.ndarray
    leaders: np.ndarray
    compressed: WeightedGraph
    broadcast_rounds: int
    exchange_stats: RoutingStats


def run_zero_weight_protocol(graph: WeightedGraph) -> ZeroWeightProtocolResult:
    """Execute Appendix A steps 1-3 as messages; return the compressed graph."""
    if graph.directed:
        raise ValueError("the zero-weight reduction is for undirected graphs")
    n = graph.n

    # Step 1: MSF + broadcast.  Each edge record is 3 words; the forest has
    # at most n-1 edges, so one batch of the 2-round broadcast trick per
    # ceil(3 (n-1) / n) = 3 words-per-slot... conservatively we ship one
    # edge per slot (n slots per batch).
    forest = minimum_spanning_forest(graph)
    batches = max(1, math.ceil(len(forest) / max(1, n)))
    broadcast_rounds = 2 * batches

    # Step 2 (local, identical at every node): zero components + leaders.
    sets = DisjointSets(n)
    for u, v, w in forest:
        if w == 0:
            sets.union(u, v)
    roots = np.array([sets.find(v) for v in range(n)], dtype=np.int64)
    minimum = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    for v in range(n):
        minimum[roots[v]] = min(minimum[roots[v]], v)
    leader = minimum[roots]
    leaders = np.unique(leader)
    compact = {int(s): index for index, s in enumerate(leaders)}

    # Step 3: each node v sends (own leader, lightest edge weight into
    # C(t)) to every leader t it has an edge into.
    lightest: Dict[Tuple[int, int], float] = {}
    for u, v, w in graph.edges():
        lu, lv = int(leader[u]), int(leader[v])
        if lu == lv:
            continue
        for sender, target_leader, source_leader in (
            (u, lv, lu),
            (v, lu, lv),
        ):
            key = (sender, target_leader)
            if key not in lightest or w < lightest[key]:
                lightest[key] = w
    messages = [
        Message(sender, target_leader, (int(leader[sender]), weight), tag="zw")
        for (sender, target_leader), weight in lightest.items()
    ]
    delivered, stats = route_two_phase(messages, n)

    # Step 4 (at the leaders): minima per source component.
    best: Dict[Tuple[int, int], float] = {}
    for target_leader in leaders:
        for message in delivered.get(int(target_leader), []):
            if message.tag != "zw":
                continue
            source_leader, weight = int(message.payload[0]), float(message.payload[1])
            a, b = sorted((compact[source_leader], compact[int(target_leader)]))
            key = (a, b)
            if key not in best or weight < best[key]:
                best[key] = weight
    compressed = WeightedGraph(
        max(1, len(leaders)),
        [(a, b, w) for (a, b), w in sorted(best.items())],
        require_positive=True,
        require_integer=True,
    )
    return ZeroWeightProtocolResult(
        leader=leader,
        leaders=leaders,
        compressed=compressed,
        broadcast_rounds=broadcast_rounds,
        exchange_stats=stats,
    )
