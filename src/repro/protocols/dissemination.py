"""Graph dissemination under faults: the pipeline-chaos entry layer.

The solver pipelines assume every node knows the input graph.  In the
fault model that knowledge has to *arrive*: this module ships every edge
over the (possibly lossy, corrupting) clique fabric before a solver
runs, which is what lets a :class:`~repro.cclique.faults.FaultPlan`
degrade a whole ``apsp_theorem11`` / ``approximate_apsp`` run instead
of just one routing call.

Each undirected edge travels as two independent messages — ``u -> v``
and ``v -> u``, payload ``[edge_id, weight]`` — through
:func:`~repro.cclique.routing.route_batch_two_phase` with whatever
recovery arm the caller picks (bounded retry, erasure coding, checksum
integrity).  An edge survives iff **either** direction arrives and
passes structural validation (edge id in range, destination matches an
endpoint of that edge, weight a positive finite integer); when the two
copies disagree the lighter weight wins deterministically.  The
surviving edges are rebuilt into a :class:`WeightedGraph` the untouched
solver stack then runs on — lost edges show up as stretched (or
infinite) distances, which is exactly what the ``pipeline-degrade``
chaos scenario scores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from ..cclique.engine import MessageBatch
from ..cclique.routing import RoutingStats, route_batch_two_phase
from ..graphs.graph import WeightedGraph


@dataclass
class DisseminationResult:
    """Outcome of shipping a graph's edges through the faulted fabric."""

    graph: WeightedGraph
    stats: RoutingStats
    attempted_edges: int
    delivered_edges: int
    lost_edges: int

    @property
    def edge_delivery_rate(self) -> float:
        if self.attempted_edges == 0:
            return 1.0
        return self.delivered_edges / self.attempted_edges

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary for ``Estimate.meta['dissemination']``."""
        return {
            "attempted_edges": self.attempted_edges,
            "delivered_edges": self.delivered_edges,
            "lost_edges": self.lost_edges,
            "edge_delivery_rate": self.edge_delivery_rate,
            "rounds": self.stats.rounds,
            "retries": self.stats.retries,
            "undelivered_messages": self.stats.undelivered,
            "reconstructed": self.stats.reconstructed,
            "fault_totals": self.stats.fault_totals,
        }


def disseminate_graph(
    graph: WeightedGraph,
    *,
    faults=None,
    max_retries: int = 0,
    recovery: Optional[str] = None,
    integrity=None,
    erasure_group: int = 4,
    bandwidth_words: int = 4,
) -> DisseminationResult:
    """Ship every edge both ways under ``faults``; rebuild what survives.

    With no faults and no recovery options this still routes the edges
    (the clean two-phase path) and returns a graph equal to the input —
    the fault-free differential reference of the pipeline scenarios.
    """
    n = graph.n
    eu = graph.edge_u.astype(np.int64)
    ev = graph.edge_v.astype(np.int64)
    ew = graph.edge_w.astype(np.float64)
    m_edges = len(eu)
    if m_edges == 0:
        empty_stats = RoutingStats(
            rounds=0, messages=0, max_sent_per_node=0,
            max_received_per_node=0, relay_max_load=0,
        )
        return DisseminationResult(
            graph=graph, stats=empty_stats,
            attempted_edges=0, delivered_edges=0, lost_edges=0,
        )

    edge_id = np.arange(m_edges, dtype=np.int64)
    batch = MessageBatch(
        src=np.concatenate([eu, ev]),
        dst=np.concatenate([ev, eu]),
        payload=np.column_stack(
            [
                np.concatenate([edge_id, edge_id]).astype(np.float64),
                np.concatenate([ew, ew]),
            ]
        ),
        tag="disseminate",
    )
    delivered, stats = route_batch_two_phase(
        batch,
        n,
        bandwidth_words=bandwidth_words,
        faults=faults,
        max_retries=max_retries,
        recovery=recovery,
        integrity=integrity,
        erasure_group=erasure_group,
    )

    # Structural validation: a surviving copy must name a real edge of
    # which its destination is an endpoint and carry a sane weight.
    # (Without integrity checksums a corrupted copy can still slip
    # through if it happens to stay consistent — the byzantine scenario
    # quantifies exactly that gap.)
    survived = np.zeros(m_edges, dtype=bool)
    weight_seen = np.full(m_edges, np.inf)
    if len(delivered):
        eid_f = delivered.payload[:, 0]
        w_f = delivered.payload[:, 1]
        ok = np.isfinite(eid_f) & np.isfinite(w_f)
        eid = np.where(ok, eid_f, 0).astype(np.int64)
        ok &= (eid_f == eid) & (eid >= 0) & (eid < m_edges)
        safe = np.clip(eid, 0, m_edges - 1)
        ok &= (delivered.dst == eu[safe]) | (delivered.dst == ev[safe])
        ok &= (w_f > 0) & (w_f == np.floor(w_f))
        eid, w_ok = eid[ok], w_f[ok]
        if len(eid):
            survived[eid] = True
            # Disagreeing duplicates resolve to the lighter copy.
            np.minimum.at(weight_seen, eid, w_ok)

    keep = np.flatnonzero(survived)
    rebuilt = WeightedGraph.from_arrays(
        n,
        eu[keep],
        ev[keep],
        weight_seen[keep],
        directed=graph.directed,
        require_positive=True,
        require_integer=True,
    )
    return DisseminationResult(
        graph=rebuilt,
        stats=stats,
        attempted_edges=m_edges,
        delivered_edges=len(keep),
        lost_edges=m_edges - len(keep),
    )


__all__ = ["DisseminationResult", "disseminate_graph"]
