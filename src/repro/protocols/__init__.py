"""Message-level distributed protocols on the Congested Clique simulator.

These are the executable counterparts of the ledger-charged steps in
:mod:`repro.core`: the same algorithms, written as real communication
schedules and cross-validated against the global-state implementations
(tests assert bit-identical outputs).  They demonstrate that the round
charges in the cost model correspond to schedules that genuinely exist.
"""

from .aggregation import (
    elect_leader,
    global_min,
    global_reduce,
    global_sum,
    share_flags,
)
from .bellman_ford import BellmanFordProgram, BellmanFordRun, run_distributed_bellman_ford
from .dissemination import DisseminationResult, disseminate_graph
from .hopset_protocol import HopsetProtocolResult, run_hopset_protocol
from .knearest_protocol import (
    BinExchangeResult,
    BroadcastKNearestResult,
    global_edge_list,
    run_bin_exchange,
    run_knearest_broadcast_protocol,
)
from .skeleton_protocol import SkeletonXYResult, run_skeleton_xy_protocol
from .zero_weight_protocol import (
    ZeroWeightProtocolResult,
    run_zero_weight_protocol,
)

__all__ = [
    "SkeletonXYResult",
    "run_skeleton_xy_protocol",
    "ZeroWeightProtocolResult",
    "run_zero_weight_protocol",
    "BellmanFordProgram",
    "BellmanFordRun",
    "BinExchangeResult",
    "BroadcastKNearestResult",
    "DisseminationResult",
    "HopsetProtocolResult",
    "disseminate_graph",
    "elect_leader",
    "global_edge_list",
    "global_min",
    "global_reduce",
    "global_sum",
    "run_bin_exchange",
    "run_distributed_bellman_ford",
    "run_hopset_protocol",
    "run_knearest_broadcast_protocol",
    "share_flags",
]
