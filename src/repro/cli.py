"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``run``
    Run one APSP variant on a generated workload; print the factor, the
    measured stretch, and the round breakdown.

``frontier``
    Print the rounds/stretch frontier (all baselines + the paper's
    algorithms) on one workload — the E8 experiment on demand.

``tradeoff``
    Sweep Theorem 1.2's t on one workload.

``simulate``
    Exercise the message-level simulator: broadcast, full-load routing,
    distributed Bellman-Ford.

``kernels``
    List the registered min-plus kernels and what auto-selection would
    pick for the given workload size.

``profile``
    Run one variant and print the per-phase wall-clock / round breakdown
    measured by the ledger's phase contexts — where pipeline time goes.

``query``
    Solve one workload, assemble a distance oracle (through the
    process-wide :data:`repro.serve.DEFAULT_STORE`), and answer a batch
    of random distance queries plus a k-nearest sample.

``routes``
    Batch-route sampled packets over the oracle's greedy next-hop table
    and print the delivery/stretch audit plus one example path.

``serve-bench``
    Drive the async serving tier (:class:`repro.serve.OracleService`)
    with a synthetic closed- or open-loop load and print p50/p99
    latency and queries/sec for the single-query vs micro-batched
    paths at each offered-load level.

All commands take ``--n``, ``--family``, ``--seed`` and ``--kernel``
(min-plus kernel override for every tropical product of the command);
outputs are plain text tables, suitable for piping into experiment logs.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from .analysis import format_table, stretch_profile, summarize_stretch
from .api import ApspSolver, SolverConfig
from .cclique import MessageBatch, RoundLedger, route_batch_two_phase
from .core import iter_variants, run_variant, variant_names
from .graphs import (
    WeightedGraph,
    cached_exact_apsp,
    check_estimate,
    erdos_renyi,
    exact_apsp,
    grid_graph,
    heavy_tail_weights,
    path_with_shortcuts,
    polynomial_weights,
    preferential_attachment,
)
from .protocols import run_distributed_bellman_ford
from .serve import (
    DEFAULT_STORE,
    OracleService,
    ServiceConfig,
    audit_stretch,
    oracle_handle,
    route_batch,
    run_closed_loop,
    run_open_loop,
)
from .semiring import (
    AUTO,
    KERNEL_ENV,
    SHARD_TILE_ENV,
    SHARD_WORKERS_ENV,
    ShardPlan,
    auto_kernel,
    iter_kernels,
    kernel_names,
    resolve_kernel,
    resolve_shard_plan,
    use_kernel,
    use_shard_plan,
)

FAMILIES = ("er", "er-dense", "grid", "path", "pa", "heavy", "poly")


def build_workload(family: str, n: int, rng: np.random.Generator) -> WeightedGraph:
    """Construct one of the named workload graphs."""
    if family == "er":
        return erdos_renyi(n, min(1.0, 6.0 / n), rng)
    if family == "er-dense":
        return erdos_renyi(n, min(1.0, 24.0 / n), rng)
    if family == "grid":
        side = max(2, int(round(n**0.5)))
        return grid_graph(side, rng)
    if family == "path":
        return path_with_shortcuts(n, rng, shortcut_count=n // 10)
    if family == "pa":
        return preferential_attachment(n, 2, rng)
    if family == "heavy":
        return erdos_renyi(n, min(1.0, 8.0 / n), rng, weights=heavy_tail_weights())
    if family == "poly":
        return erdos_renyi(
            n, min(1.0, 8.0 / n), rng, weights=polynomial_weights(n, 2.5)
        )
    raise ValueError(f"unknown family {family!r}; choose from {FAMILIES}")


def _common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=96, help="number of nodes")
    parser.add_argument(
        "--family", choices=FAMILIES, default="er", help="workload family"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--kernel",
        choices=(AUTO,) + kernel_names(),
        default=AUTO,
        help="min-plus kernel for every tropical product (default: auto)",
    )


def _shard_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags that compile into a :class:`ShardPlan` for the sharded kernel.

    ``dest`` avoids colliding with ``serve-bench --workers`` (thread-pool
    size); these govern the *process* pool of ``--kernel sharded``.
    """
    parser.add_argument(
        "--workers",
        dest="shard_workers",
        type=int,
        default=None,
        help="process-pool workers for the sharded kernel "
        f"(default: {SHARD_WORKERS_ENV} or cpu count; 0 = inline)",
    )
    parser.add_argument(
        "--tile",
        dest="shard_tile",
        type=int,
        default=None,
        help="square tile edge for the sharded kernel "
        f"(default: {SHARD_TILE_ENV} or 256)",
    )


def _shard_plan_from_args(args: argparse.Namespace) -> Optional[ShardPlan]:
    """A ShardPlan when either shard flag was given, else ``None``.

    ``None`` leaves ambient resolution (ContextVar, then ``REPRO_SHARD_*``
    env) untouched; flags override the env-derived base field-wise.
    """
    workers = getattr(args, "shard_workers", None)
    tile = getattr(args, "shard_tile", None)
    if workers is None and tile is None:
        return None
    base = ShardPlan.from_env()
    fields = base.to_dict()
    fields.pop("resolved_workers", None)
    if workers is not None:
        fields["workers"] = workers
    if tile is not None:
        fields["tile"] = tile
    return ShardPlan.from_dict(fields)


def cmd_run(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    graph = build_workload(args.family, args.n, rng)
    exact = cached_exact_apsp(graph)
    ledger = RoundLedger(graph.n)
    # Registry dispatch: ``t`` is dropped for variants that don't take it.
    result = run_variant(args.variant, graph, rng=rng, ledger=ledger, t=args.t)
    profile = stretch_profile(exact, result.estimate, result.factor)
    print(f"graph   : {graph}")
    print(f"variant : {args.variant}")
    print(f"factor  : {result.factor:.2f}")
    print(f"stretch : {summarize_stretch(profile)}")
    print(f"rounds  : {ledger.total_rounds}")
    print()
    rows = sorted(ledger.rounds_by_phase().items())
    print(format_table(["phase", "rounds"], rows))
    return 0


def cmd_frontier(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    graph = build_workload(args.family, args.n, rng)
    exact = cached_exact_apsp(graph)
    rows = []
    # Every registered variant, in registration order; variants with
    # required parameters (thm 1.2's t) run at their declared defaults.
    for spec in iter_variants():
        ledger = RoundLedger(graph.n)
        result = run_variant(
            spec.name, graph, rng=rng, ledger=ledger, apply_defaults=True
        )
        report = check_estimate(exact, result.estimate)
        rows.append(
            (
                spec.display_name,
                ledger.total_rounds,
                round(result.factor, 1),
                round(report.max_stretch, 3),
            )
        )
    print(
        format_table(
            ["algorithm", "rounds", "factor bound", "max stretch"],
            rows,
            title=f"frontier on {args.family} (n={graph.n})",
        )
    )
    return 0


def cmd_tradeoff(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    graph = build_workload(args.family, args.n, rng)
    exact = cached_exact_apsp(graph)
    rows = []
    for t in range(1, args.max_t + 1):
        ledger = RoundLedger(graph.n)
        result = run_variant("tradeoff", graph, rng=rng, ledger=ledger, t=t)
        report = check_estimate(exact, result.estimate)
        rows.append(
            (
                t,
                round(result.meta["tradeoff_bound"], 1),
                round(result.factor, 1),
                round(report.max_stretch, 3),
                ledger.total_rounds,
            )
        )
    print(
        format_table(
            ["t", "formula bound", "chained factor", "max stretch", "rounds"],
            rows,
            title=f"Theorem 1.2 tradeoff on {args.family} (n={graph.n})",
        )
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    # The communication plane is array-native: full load is feasible at
    # four-digit n (the old per-message simulator capped this at 48).
    n = min(args.n, 1024)
    perms = np.stack([rng.permutation(n) for _ in range(n)])
    batch = MessageBatch(
        src=np.tile(np.arange(n, dtype=np.int64), n),
        dst=perms.reshape(-1),
        payload=np.tile(np.arange(n, dtype=np.float64), n).reshape(-1, 1),
    )
    start = time.perf_counter()
    _, stats = route_batch_two_phase(batch, n)
    wall = time.perf_counter() - start
    print(f"routing  : {stats.messages} messages at full load "
          f"in {stats.rounds} rounds ({stats.spill_rounds} spill, "
          f"{wall:.2f}s wall)")
    graph = build_workload("er", min(n, 16), rng)
    run = run_distributed_bellman_ford(graph)
    exact = exact_apsp(graph)
    error = float(np.max(np.abs(run.estimate - exact)))
    print(f"protocol : Bellman-Ford on {graph}: {run.rounds} rounds, "
          f"max error {error:.0f}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    graph = build_workload(args.family, args.n, rng)
    ledger = RoundLedger(graph.n)
    start = time.perf_counter()
    result = run_variant(args.variant, graph, rng=rng, ledger=ledger, t=args.t)
    wall = time.perf_counter() - start
    seconds = ledger.seconds_by_phase()
    rounds = ledger.rounds_by_phase()
    phases = sorted(set(seconds) | set(rounds))
    rows = [
        (
            phase,
            rounds.get(phase, 0),
            f"{seconds.get(phase, 0.0) * 1e3:.1f}",
            f"{100.0 * seconds.get(phase, 0.0) / max(wall, 1e-12):.1f}%",
        )
        for phase in phases
    ]
    print(f"graph   : {graph}")
    print(f"variant : {args.variant}")
    print(f"factor  : {result.factor:.2f}")
    print(f"wall    : {wall * 1e3:.1f} ms "
          f"({ledger.timed_seconds * 1e3:.1f} ms inside ledger phases)")
    print(f"rounds  : {ledger.total_rounds}")
    print()
    print(format_table(["phase", "rounds", "ms", "% of wall"], rows))
    return 0


def _build_oracle(args: argparse.Namespace):
    """Fetch the workload's oracle through the shared store.

    The store is addressed by the *request* — graph content hash,
    variant, seed, t (:func:`repro.serve.oracle_handle`) — so a
    repeated invocation in the same process skips the solver entirely
    and reuses the cached artifact; the returned provenance string says
    which path was taken.
    """
    rng = np.random.default_rng(args.seed)
    graph = build_workload(args.family, args.n, rng)
    handle = oracle_handle(graph, args.variant, args.seed, args.t)
    oracle = DEFAULT_STORE.lookup(handle)
    if oracle is not None:
        return graph, oracle, "hit (cached oracle reused; solve skipped)"
    # ``t`` is forwarded for the tradeoff variant; the registry drops it
    # for variants that don't take it.
    solver = ApspSolver(
        SolverConfig(variant=args.variant, seed=args.seed, t=args.t)
    )
    result = solver.solve(graph)
    oracle = DEFAULT_STORE.get_or_build(graph, result, alias=handle)
    return graph, oracle, "miss (workload solved, oracle built)"


def _print_store_line(provenance: str) -> None:
    stats = DEFAULT_STORE.stats()
    print(f"store   : {provenance}; {stats['entries']} cached, "
          f"{stats['hits']} hits / {stats['misses']} misses, "
          f"{stats['builds']} builds "
          f"({stats['build_seconds'] * 1e3:.0f} ms building)")


def cmd_query(args: argparse.Namespace) -> int:
    graph, oracle, provenance = _build_oracle(args)
    exact = cached_exact_apsp(graph)
    print(f"graph   : {graph}")
    print(f"oracle  : variant={args.variant} factor={oracle.factor:.1f} "
          f"{oracle.nbytes / 2**20:.2f} MiB")
    _print_store_line(provenance)
    qrng = np.random.default_rng(args.seed + 1)
    sources = qrng.integers(0, graph.n, size=args.queries)
    targets = qrng.integers(0, graph.n, size=args.queries)
    estimates = oracle.query_many(sources, targets)
    rows = []
    for s, t, est in zip(sources, targets, estimates):
        true = exact[s, t]
        ratio = est / true if np.isfinite(true) and true > 0 else float("nan")
        rows.append((int(s), int(t),
                     "inf" if not np.isfinite(est) else f"{est:.0f}",
                     "inf" if not np.isfinite(true) else f"{true:.0f}",
                     f"{ratio:.3f}"))
    print()
    print(format_table(["source", "target", "estimate", "exact", "ratio"],
                       rows, title=f"{args.queries} random distance queries"))
    k = min(args.k, graph.n - 1)
    anchor = int(sources[0]) if len(sources) else 0
    if k >= 1:
        ids, dists = oracle.k_nearest(k, sources=[anchor])
        pairs = ", ".join(
            f"{v} (d~{d:.0f})" for v, d in zip(ids[0], dists[0]) if v >= 0
        )
        print(f"\n{k}-nearest of node {anchor}: {pairs}")
    return 0


def cmd_routes(args: argparse.Namespace) -> int:
    graph, oracle, provenance = _build_oracle(args)
    exact = cached_exact_apsp(graph)
    audit = audit_stretch(
        oracle, exact, np.random.default_rng(args.seed + 1), samples=args.pairs
    )
    print(f"graph   : {graph}")
    print(f"oracle  : variant={args.variant} factor={oracle.factor:.1f}")
    _print_store_line(provenance)
    print(f"sampled : {audit.samples} pairs -> {audit.attempts} attempted "
          f"({audit.skipped_self} self, {audit.skipped_unreachable} "
          f"unreachable, {audit.skipped_zero} zero-distance)")
    rate = audit.delivery_rate
    print(f"routing : delivered {audit.delivered} "
          f"({'n/a' if np.isnan(rate) else f'{rate:.1%}'}), "
          f"{audit.loops} loops, {audit.dead_ends} dead ends, "
          f"{audit.budget_exhausted} over budget")
    if audit.delivered:
        print(f"stretch : mean {audit.mean_stretch:.3f}, "
              f"max {audit.max_stretch:.3f} (bound {oracle.factor:.1f})")
    qrng = np.random.default_rng(args.seed + 2)
    finite = np.isfinite(exact) & (exact > 0)
    pairs = np.argwhere(finite)
    if len(pairs):
        s, t = map(int, pairs[qrng.integers(0, len(pairs))])
        routes = route_batch(oracle, [s], [t], record_paths=True)
        print(f"\nexample packet {s} -> {t}: "
              f"{' -> '.join(map(str, routes.path(0)))}")
        if routes.delivered[0]:
            print(f"  length {routes.lengths[0]:.0f} vs optimal "
                  f"{exact[s, t]:.0f} ({routes.lengths[0] / exact[s, t]:.2f}x)")
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    import asyncio
    import json

    rng = np.random.default_rng(args.seed)
    graph = build_workload(args.family, args.n, rng)
    levels = [int(v) for v in str(args.levels).split(",") if v.strip()]
    if not levels:
        raise ValueError("--levels must name at least one offered-load level")
    config = ServiceConfig(
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        max_workers=args.workers,
    )
    with OracleService(config) as service:
        start = time.perf_counter()
        handle = service.warm(
            graph, variant=args.variant, seed=args.seed, t=args.t
        )
        warm_seconds = time.perf_counter() - start
        qrng = np.random.default_rng(args.seed + 1)
        sources = qrng.integers(0, graph.n, size=4096)
        targets = qrng.integers(0, graph.n, size=4096)

        def request_factory(batched: bool):
            endpoint = getattr(service, args.endpoint)

            async def request(i: int):
                s = int(sources[i % 4096])
                t = int(targets[i % 4096])
                if args.endpoint == "k_nearest":
                    return await service.k_nearest(
                        handle, s, args.k, batched=batched
                    )
                return await endpoint(handle, s, t, batched=batched)

            return request

        rows = []
        for level in levels:
            for batched in (False, True):
                request = request_factory(batched)
                if args.mode == "open":
                    report = asyncio.run(
                        run_open_loop(request, args.requests, float(level))
                    )
                else:
                    report = asyncio.run(
                        run_closed_loop(request, args.requests, level)
                    )
                snap = report.snapshot()
                rows.append(
                    (
                        level,
                        "batched" if batched else "single",
                        f"{report.qps:.0f}",
                        f"{(snap['latency']['p50'] or 0) * 1e3:.2f}",
                        f"{(snap['latency']['p99'] or 0) * 1e3:.2f}",
                        report.errors,
                    )
                )
        print(f"graph   : {graph}")
        print(f"service : warm {warm_seconds * 1e3:.0f} ms, "
              f"max_batch={config.max_batch}, "
              f"max_delay={config.max_delay_ms:.1f} ms, "
              f"{config.max_workers} workers")
        offered = "clients" if args.mode == "closed" else "req/s"
        print()
        print(format_table(
            [offered, "path", "qps", "p50 ms", "p99 ms", "errors"],
            rows,
            title=f"serve-bench: {args.endpoint} endpoint, "
            f"{args.mode}-loop x {args.requests} requests",
        ))
        snapshot = service.snapshot()
        assert snapshot == json.loads(json.dumps(snapshot, allow_nan=False))
        store = snapshot["tenants"]["default"]
        batching = snapshot["metrics"]["batching"].get(args.endpoint, {})
        print(f"\nstore   : {store['hits']} hits / {store['misses']} misses, "
              f"{store['builds']} builds "
              f"({store['build_seconds'] * 1e3:.0f} ms), "
              f"{store['evictions']} evictions")
        print(f"batches : {batching.get('batches', 0)} flushed, "
              f"mean size {batching.get('mean_batch') or 0:.1f}, "
              f"max {batching.get('max_batch', 0)} "
              f"(snapshot JSON round-trip OK)")
    return 0


def cmd_kernels(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    graph = build_workload(args.family, args.n, rng)
    matrix = graph.matrix()
    rows = [
        (spec.name, spec.requires or "-", spec.summary)
        for spec in iter_kernels()
    ]
    print(format_table(["kernel", "requires", "summary"], rows,
                       title="registered min-plus kernels"))
    # auto_kernel ignores any --kernel/env pin; resolve_kernel honours it.
    print(f"\nauto-selection for {args.family} (n={graph.n}): "
          f"{auto_kernel(matrix, matrix)}")
    effective = resolve_kernel(matrix, matrix)
    if effective != auto_kernel(matrix, matrix):
        print(f"pinned for this invocation (--kernel/{KERNEL_ENV}): {effective}")
    print(f"override with --kernel or the {KERNEL_ENV} environment variable")
    plan = resolve_shard_plan()
    print(
        f"sharded plan: tile={plan.tile} workers={plan.resolved_workers()} "
        f"placement={plan.placement} dtype={plan.dtype} "
        f"(--workers/--tile or {SHARD_WORKERS_ENV}/{SHARD_TILE_ENV})"
    )
    return 0


def _coerce_param(value: str):
    """``--set`` values: int where possible, then float, else string."""
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            continue
    return value


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .chaos import get_scenario, iter_scenarios, run_scenario

    if args.list:
        rows = [
            (spec.name, spec.faults, spec.recovery)
            for spec in iter_scenarios()
        ]
        print(format_table(["scenario", "faults", "recovery"], rows,
                           title="registered chaos scenarios"))
        return 0

    overrides = {}
    for item in args.set or []:
        if "=" not in item:
            raise SystemExit(f"--set expects key=value, got {item!r}")
        key, _, value = item.partition("=")
        overrides[key] = _coerce_param(value)

    names = [args.scenario] if args.scenario else [
        spec.name for spec in iter_scenarios()
    ]
    reports = []
    rows = []
    for name in names:
        accepted = get_scenario(name).default_params
        params = {k: v for k, v in overrides.items() if k in accepted}
        report = run_scenario(name, n=args.n, seed=args.seed, **params)
        reports.append(report)
        score = report.score

        def cell(key, fmt="{:.3f}"):
            value = score.get(key)
            return fmt.format(value) if value is not None else "-"

        rows.append((
            name,
            cell("delivery_no_recovery"),
            cell("delivery_rate"),
            cell("recovery_gain", "{:+.3f}"),
            cell("rounds_to_recovery", "{:d}"),
            cell("stretch_degradation", "{:.3f}x"),
            cell("detection_rate"),
        ))
    print(format_table(
        ["scenario", "no-recovery", "recovered", "gain", "extra rounds",
         "stretch", "detection"],
        rows,
        title=f"chaos scenarios (n={args.n}, seed={args.seed})",
    ))
    if args.json:
        payload = [report.snapshot() for report in reports]
        with open(args.json, "w", encoding="utf-8") as sink:
            json.dump(payload[0] if len(payload) == 1 else payload,
                      sink, indent=2, sort_keys=True)
        print(f"\nreport written to {args.json}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    # Lazy import: the lint plane is pure stdlib-ast tooling that no
    # other command needs in its import path.
    from .lint import (
        get_rule,
        lint_tree,
        render_report,
        render_rule_listing,
        write_json_report,
    )

    if args.list_rules:
        print(render_rule_listing())
        return 0
    rules = None
    if args.rules:
        rules = [
            get_rule(rule_id.strip())
            for rule_id in args.rules.split(",")
            if rule_id.strip()
        ]
    report = lint_tree(args.root, paths=args.paths or None, rules=rules)
    print(render_report(report))
    if args.json:
        write_json_report(report, args.json)
        print(f"report written to {args.json}")
    return 0 if report.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Congested Clique approximate APSP (PODC 2024) reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one APSP variant")
    _common_arguments(run_parser)
    _shard_arguments(run_parser)
    run_parser.add_argument(
        "--variant",
        choices=variant_names(),
        default="theorem11",
    )
    run_parser.add_argument("--t", type=int, default=2, help="tradeoff parameter")
    run_parser.set_defaults(handler=cmd_run)

    frontier_parser = subparsers.add_parser(
        "frontier", help="baselines vs the paper on one workload"
    )
    _common_arguments(frontier_parser)
    frontier_parser.set_defaults(handler=cmd_frontier)

    tradeoff_parser = subparsers.add_parser(
        "tradeoff", help="sweep Theorem 1.2's t"
    )
    _common_arguments(tradeoff_parser)
    tradeoff_parser.add_argument("--max-t", type=int, default=4)
    tradeoff_parser.set_defaults(handler=cmd_tradeoff)

    simulate_parser = subparsers.add_parser(
        "simulate", help="message-level simulator demos"
    )
    _common_arguments(simulate_parser)
    simulate_parser.set_defaults(handler=cmd_simulate)

    kernels_parser = subparsers.add_parser(
        "kernels", help="list min-plus kernels and the auto-selection"
    )
    _common_arguments(kernels_parser)
    _shard_arguments(kernels_parser)
    kernels_parser.set_defaults(handler=cmd_kernels)

    profile_parser = subparsers.add_parser(
        "profile", help="per-phase wall-clock/round breakdown of one variant"
    )
    _common_arguments(profile_parser)
    _shard_arguments(profile_parser)
    profile_parser.add_argument(
        "--variant",
        choices=variant_names(),
        default="theorem11",
    )
    profile_parser.add_argument(
        "--t", type=int, default=2, help="tradeoff parameter"
    )
    profile_parser.set_defaults(handler=cmd_profile)

    query_parser = subparsers.add_parser(
        "query", help="answer distance queries from a built oracle"
    )
    _common_arguments(query_parser)
    query_parser.add_argument(
        "--variant",
        choices=variant_names(),
        default="theorem11",
    )
    query_parser.add_argument(
        "--t", type=int, default=2, help="tradeoff parameter"
    )
    query_parser.add_argument(
        "--queries", type=int, default=8, help="random pairs to query"
    )
    query_parser.add_argument(
        "--k", type=int, default=5, help="k for the k-nearest sample"
    )
    query_parser.set_defaults(handler=cmd_query)

    routes_parser = subparsers.add_parser(
        "routes", help="batch-route packets over the oracle's tables"
    )
    _common_arguments(routes_parser)
    routes_parser.add_argument(
        "--variant",
        choices=variant_names(),
        default="theorem11",
    )
    routes_parser.add_argument(
        "--t", type=int, default=2, help="tradeoff parameter"
    )
    routes_parser.add_argument(
        "--pairs", type=int, default=256, help="sampled source/target pairs"
    )
    routes_parser.set_defaults(handler=cmd_routes)

    serve_parser = subparsers.add_parser(
        "serve-bench",
        help="drive the async serving tier with a synthetic load",
    )
    _common_arguments(serve_parser)
    serve_parser.add_argument(
        "--variant",
        choices=variant_names(),
        default="theorem11",
    )
    serve_parser.add_argument(
        "--t", type=int, default=2, help="tradeoff parameter"
    )
    serve_parser.add_argument(
        "--endpoint",
        choices=("distance", "route", "k_nearest"),
        default="distance",
        help="which service endpoint the load exercises",
    )
    serve_parser.add_argument(
        "--mode",
        choices=("closed", "open"),
        default="closed",
        help="closed loop (levels = concurrent clients) or open loop "
        "(levels = offered requests/sec)",
    )
    serve_parser.add_argument(
        "--levels",
        default="4,16,64",
        help="comma-separated offered-load levels",
    )
    serve_parser.add_argument(
        "--requests", type=int, default=400, help="requests per level/path"
    )
    serve_parser.add_argument(
        "--max-batch", type=int, default=64, help="micro-batch size bound"
    )
    serve_parser.add_argument(
        "--max-delay-ms", type=float, default=2.0, help="flush deadline"
    )
    serve_parser.add_argument(
        "--workers", type=int, default=4, help="thread-pool workers"
    )
    serve_parser.add_argument(
        "--k", type=int, default=5, help="k for the k_nearest endpoint"
    )
    serve_parser.set_defaults(handler=cmd_serve_bench)

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="run fault-injection scenarios and score recovery",
    )
    chaos_parser.add_argument(
        "--n", type=int, default=48, help="clique size for each scenario"
    )
    chaos_parser.add_argument("--seed", type=int, default=0)
    from .chaos import scenario_names

    chaos_parser.add_argument(
        "--scenario",
        default=None,
        choices=scenario_names(),
        help="one scenario name (default: run every registered scenario)",
    )
    chaos_parser.add_argument(
        "--list", action="store_true", help="list registered scenarios"
    )
    chaos_parser.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="override a scenario parameter (repeatable), e.g. --set drop=0.1",
    )
    chaos_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the ChaosReport(s) JSON artifact to PATH",
    )
    chaos_parser.set_defaults(handler=cmd_chaos)

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the project-invariant static analysis plane",
        description=(
            "AST-based lint pass over src/, benchmarks/, tests/, and "
            "examples/ enforcing the repo's correctness invariants: "
            "determinism (seeded RNG, no ambient wall clocks), "
            "concurrency (no blocking under locks, ContextVar pin "
            "hand-off into executor workers), JSON-safety of snapshots, "
            "allocation hygiene (out= buffers on hot paths), and "
            "registry/benchmark metadata contracts.  Exits non-zero on "
            "any finding — the CI gate."
        ),
        epilog=(
            "Suppress a reviewed exception with a `# lint: allow[rule-id]` "
            "pragma on the flagged line or the line directly above "
            "(comma-separate several rule ids; `*` allows every rule). "
            "Pragmas are for audited sites only — e.g. the wall-clock "
            "phase profiler in RoundLedger — and should carry a comment "
            "justifying the exception.  See DESIGN.md section 14 for the "
            "rule catalogue and how to add a rule."
        ),
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the standard scan roots)",
    )
    lint_parser.add_argument(
        "--root",
        default=".",
        help="repository root rule scopes are resolved against (default: .)",
    )
    lint_parser.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="run only these rule ids (default: every registered rule)",
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules by family and exit",
    )
    lint_parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the machine-readable report artifact to PATH",
    )
    lint_parser.set_defaults(handler=cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # ``--kernel`` pins every tropical product of the command to one
    # registered kernel; "auto" keeps the per-product selection.
    # ``--workers``/``--tile`` compile into a ShardPlan governing the
    # sharded kernel (``None`` keeps ambient/env resolution untouched).
    with use_kernel(getattr(args, "kernel", None)), use_shard_plan(
        _shard_plan_from_args(args)
    ):
        return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
