"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``run``
    Run one APSP variant on a generated workload; print the factor, the
    measured stretch, and the round breakdown.

``frontier``
    Print the rounds/stretch frontier (all baselines + the paper's
    algorithms) on one workload — the E8 experiment on demand.

``tradeoff``
    Sweep Theorem 1.2's t on one workload.

``simulate``
    Exercise the message-level simulator: broadcast, full-load routing,
    distributed Bellman-Ford.

``kernels``
    List the registered min-plus kernels and what auto-selection would
    pick for the given workload size.

``profile``
    Run one variant and print the per-phase wall-clock / round breakdown
    measured by the ledger's phase contexts — where pipeline time goes.

``query``
    Solve one workload, assemble a distance oracle (through the
    process-wide :data:`repro.serve.DEFAULT_STORE`), and answer a batch
    of random distance queries plus a k-nearest sample.

``routes``
    Batch-route sampled packets over the oracle's greedy next-hop table
    and print the delivery/stretch audit plus one example path.

All commands take ``--n``, ``--family``, ``--seed`` and ``--kernel``
(min-plus kernel override for every tropical product of the command);
outputs are plain text tables, suitable for piping into experiment logs.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np

from .analysis import format_table, stretch_profile, summarize_stretch
from .api import ApspSolver, SolverConfig
from .cclique import MessageBatch, RoundLedger, route_batch_two_phase
from .core import iter_variants, run_variant, variant_names
from .graphs import (
    WeightedGraph,
    cached_exact_apsp,
    check_estimate,
    erdos_renyi,
    exact_apsp,
    grid_graph,
    heavy_tail_weights,
    path_with_shortcuts,
    polynomial_weights,
    preferential_attachment,
)
from .protocols import run_distributed_bellman_ford
from .serve import DEFAULT_STORE, audit_stretch, route_batch
from .semiring import (
    AUTO,
    KERNEL_ENV,
    auto_kernel,
    iter_kernels,
    kernel_names,
    resolve_kernel,
    use_kernel,
)

FAMILIES = ("er", "er-dense", "grid", "path", "pa", "heavy", "poly")


def build_workload(family: str, n: int, rng: np.random.Generator) -> WeightedGraph:
    """Construct one of the named workload graphs."""
    if family == "er":
        return erdos_renyi(n, min(1.0, 6.0 / n), rng)
    if family == "er-dense":
        return erdos_renyi(n, min(1.0, 24.0 / n), rng)
    if family == "grid":
        side = max(2, int(round(n**0.5)))
        return grid_graph(side, rng)
    if family == "path":
        return path_with_shortcuts(n, rng, shortcut_count=n // 10)
    if family == "pa":
        return preferential_attachment(n, 2, rng)
    if family == "heavy":
        return erdos_renyi(n, min(1.0, 8.0 / n), rng, weights=heavy_tail_weights())
    if family == "poly":
        return erdos_renyi(
            n, min(1.0, 8.0 / n), rng, weights=polynomial_weights(n, 2.5)
        )
    raise ValueError(f"unknown family {family!r}; choose from {FAMILIES}")


def _common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=96, help="number of nodes")
    parser.add_argument(
        "--family", choices=FAMILIES, default="er", help="workload family"
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--kernel",
        choices=(AUTO,) + kernel_names(),
        default=AUTO,
        help="min-plus kernel for every tropical product (default: auto)",
    )


def cmd_run(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    graph = build_workload(args.family, args.n, rng)
    exact = cached_exact_apsp(graph)
    ledger = RoundLedger(graph.n)
    # Registry dispatch: ``t`` is dropped for variants that don't take it.
    result = run_variant(args.variant, graph, rng=rng, ledger=ledger, t=args.t)
    profile = stretch_profile(exact, result.estimate, result.factor)
    print(f"graph   : {graph}")
    print(f"variant : {args.variant}")
    print(f"factor  : {result.factor:.2f}")
    print(f"stretch : {summarize_stretch(profile)}")
    print(f"rounds  : {ledger.total_rounds}")
    print()
    rows = sorted(ledger.rounds_by_phase().items())
    print(format_table(["phase", "rounds"], rows))
    return 0


def cmd_frontier(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    graph = build_workload(args.family, args.n, rng)
    exact = cached_exact_apsp(graph)
    rows = []
    # Every registered variant, in registration order; variants with
    # required parameters (thm 1.2's t) run at their declared defaults.
    for spec in iter_variants():
        ledger = RoundLedger(graph.n)
        result = run_variant(
            spec.name, graph, rng=rng, ledger=ledger, apply_defaults=True
        )
        report = check_estimate(exact, result.estimate)
        rows.append(
            (
                spec.display_name,
                ledger.total_rounds,
                round(result.factor, 1),
                round(report.max_stretch, 3),
            )
        )
    print(
        format_table(
            ["algorithm", "rounds", "factor bound", "max stretch"],
            rows,
            title=f"frontier on {args.family} (n={graph.n})",
        )
    )
    return 0


def cmd_tradeoff(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    graph = build_workload(args.family, args.n, rng)
    exact = cached_exact_apsp(graph)
    rows = []
    for t in range(1, args.max_t + 1):
        ledger = RoundLedger(graph.n)
        result = run_variant("tradeoff", graph, rng=rng, ledger=ledger, t=t)
        report = check_estimate(exact, result.estimate)
        rows.append(
            (
                t,
                round(result.meta["tradeoff_bound"], 1),
                round(result.factor, 1),
                round(report.max_stretch, 3),
                ledger.total_rounds,
            )
        )
    print(
        format_table(
            ["t", "formula bound", "chained factor", "max stretch", "rounds"],
            rows,
            title=f"Theorem 1.2 tradeoff on {args.family} (n={graph.n})",
        )
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    # The communication plane is array-native: full load is feasible at
    # four-digit n (the old per-message simulator capped this at 48).
    n = min(args.n, 1024)
    perms = np.stack([rng.permutation(n) for _ in range(n)])
    batch = MessageBatch(
        src=np.tile(np.arange(n, dtype=np.int64), n),
        dst=perms.reshape(-1),
        payload=np.tile(np.arange(n, dtype=np.float64), n).reshape(-1, 1),
    )
    start = time.perf_counter()
    _, stats = route_batch_two_phase(batch, n)
    wall = time.perf_counter() - start
    print(f"routing  : {stats.messages} messages at full load "
          f"in {stats.rounds} rounds ({stats.spill_rounds} spill, "
          f"{wall:.2f}s wall)")
    graph = build_workload("er", min(n, 16), rng)
    run = run_distributed_bellman_ford(graph)
    exact = exact_apsp(graph)
    error = float(np.max(np.abs(run.estimate - exact)))
    print(f"protocol : Bellman-Ford on {graph}: {run.rounds} rounds, "
          f"max error {error:.0f}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    graph = build_workload(args.family, args.n, rng)
    ledger = RoundLedger(graph.n)
    start = time.perf_counter()
    result = run_variant(args.variant, graph, rng=rng, ledger=ledger, t=args.t)
    wall = time.perf_counter() - start
    seconds = ledger.seconds_by_phase()
    rounds = ledger.rounds_by_phase()
    phases = sorted(set(seconds) | set(rounds))
    rows = [
        (
            phase,
            rounds.get(phase, 0),
            f"{seconds.get(phase, 0.0) * 1e3:.1f}",
            f"{100.0 * seconds.get(phase, 0.0) / max(wall, 1e-12):.1f}%",
        )
        for phase in phases
    ]
    print(f"graph   : {graph}")
    print(f"variant : {args.variant}")
    print(f"factor  : {result.factor:.2f}")
    print(f"wall    : {wall * 1e3:.1f} ms "
          f"({ledger.timed_seconds * 1e3:.1f} ms inside ledger phases)")
    print(f"rounds  : {ledger.total_rounds}")
    print()
    print(format_table(["phase", "rounds", "ms", "% of wall"], rows))
    return 0


def _build_oracle(args: argparse.Namespace):
    """Solve the workload and fetch its oracle through the shared store."""
    rng = np.random.default_rng(args.seed)
    graph = build_workload(args.family, args.n, rng)
    # ``t`` is forwarded for the tradeoff variant; the registry drops it
    # for variants that don't take it.
    solver = ApspSolver(
        SolverConfig(variant=args.variant, seed=args.seed, t=args.t)
    )
    result = solver.solve(graph)
    oracle = DEFAULT_STORE.get_or_build(graph, result)
    return graph, result, oracle


def cmd_query(args: argparse.Namespace) -> int:
    graph, result, oracle = _build_oracle(args)
    exact = cached_exact_apsp(graph)
    print(f"graph   : {graph}")
    print(f"oracle  : variant={args.variant} factor={oracle.factor:.1f} "
          f"{oracle.nbytes / 2**20:.2f} MiB "
          f"(store key {DEFAULT_STORE.key_for(graph, result)[:16]}..., "
          f"{len(DEFAULT_STORE)} cached)")
    qrng = np.random.default_rng(args.seed + 1)
    sources = qrng.integers(0, graph.n, size=args.queries)
    targets = qrng.integers(0, graph.n, size=args.queries)
    estimates = oracle.query_many(sources, targets)
    rows = []
    for s, t, est in zip(sources, targets, estimates):
        true = exact[s, t]
        ratio = est / true if np.isfinite(true) and true > 0 else float("nan")
        rows.append((int(s), int(t),
                     "inf" if not np.isfinite(est) else f"{est:.0f}",
                     "inf" if not np.isfinite(true) else f"{true:.0f}",
                     f"{ratio:.3f}"))
    print()
    print(format_table(["source", "target", "estimate", "exact", "ratio"],
                       rows, title=f"{args.queries} random distance queries"))
    k = min(args.k, graph.n - 1)
    anchor = int(sources[0]) if len(sources) else 0
    if k >= 1:
        ids, dists = oracle.k_nearest(k, sources=[anchor])
        pairs = ", ".join(
            f"{v} (d~{d:.0f})" for v, d in zip(ids[0], dists[0]) if v >= 0
        )
        print(f"\n{k}-nearest of node {anchor}: {pairs}")
    return 0


def cmd_routes(args: argparse.Namespace) -> int:
    graph, result, oracle = _build_oracle(args)
    exact = cached_exact_apsp(graph)
    audit = audit_stretch(
        oracle, exact, np.random.default_rng(args.seed + 1), samples=args.pairs
    )
    print(f"graph   : {graph}")
    print(f"oracle  : variant={args.variant} factor={oracle.factor:.1f}")
    print(f"sampled : {audit.samples} pairs -> {audit.attempts} attempted "
          f"({audit.skipped_self} self, {audit.skipped_unreachable} "
          f"unreachable, {audit.skipped_zero} zero-distance)")
    rate = audit.delivery_rate
    print(f"routing : delivered {audit.delivered} "
          f"({'n/a' if np.isnan(rate) else f'{rate:.1%}'}), "
          f"{audit.loops} loops, {audit.dead_ends} dead ends, "
          f"{audit.budget_exhausted} over budget")
    if audit.delivered:
        print(f"stretch : mean {audit.mean_stretch:.3f}, "
              f"max {audit.max_stretch:.3f} (bound {oracle.factor:.1f})")
    qrng = np.random.default_rng(args.seed + 2)
    finite = np.isfinite(exact) & (exact > 0)
    pairs = np.argwhere(finite)
    if len(pairs):
        s, t = map(int, pairs[qrng.integers(0, len(pairs))])
        routes = route_batch(oracle, [s], [t], record_paths=True)
        print(f"\nexample packet {s} -> {t}: "
              f"{' -> '.join(map(str, routes.path(0)))}")
        if routes.delivered[0]:
            print(f"  length {routes.lengths[0]:.0f} vs optimal "
                  f"{exact[s, t]:.0f} ({routes.lengths[0] / exact[s, t]:.2f}x)")
    return 0


def cmd_kernels(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    graph = build_workload(args.family, args.n, rng)
    matrix = graph.matrix()
    rows = [
        (spec.name, spec.requires or "-", spec.summary)
        for spec in iter_kernels()
    ]
    print(format_table(["kernel", "requires", "summary"], rows,
                       title="registered min-plus kernels"))
    # auto_kernel ignores any --kernel/env pin; resolve_kernel honours it.
    print(f"\nauto-selection for {args.family} (n={graph.n}): "
          f"{auto_kernel(matrix, matrix)}")
    effective = resolve_kernel(matrix, matrix)
    if effective != auto_kernel(matrix, matrix):
        print(f"pinned for this invocation (--kernel/{KERNEL_ENV}): {effective}")
    print(f"override with --kernel or the {KERNEL_ENV} environment variable")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Congested Clique approximate APSP (PODC 2024) reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one APSP variant")
    _common_arguments(run_parser)
    run_parser.add_argument(
        "--variant",
        choices=variant_names(),
        default="theorem11",
    )
    run_parser.add_argument("--t", type=int, default=2, help="tradeoff parameter")
    run_parser.set_defaults(handler=cmd_run)

    frontier_parser = subparsers.add_parser(
        "frontier", help="baselines vs the paper on one workload"
    )
    _common_arguments(frontier_parser)
    frontier_parser.set_defaults(handler=cmd_frontier)

    tradeoff_parser = subparsers.add_parser(
        "tradeoff", help="sweep Theorem 1.2's t"
    )
    _common_arguments(tradeoff_parser)
    tradeoff_parser.add_argument("--max-t", type=int, default=4)
    tradeoff_parser.set_defaults(handler=cmd_tradeoff)

    simulate_parser = subparsers.add_parser(
        "simulate", help="message-level simulator demos"
    )
    _common_arguments(simulate_parser)
    simulate_parser.set_defaults(handler=cmd_simulate)

    kernels_parser = subparsers.add_parser(
        "kernels", help="list min-plus kernels and the auto-selection"
    )
    _common_arguments(kernels_parser)
    kernels_parser.set_defaults(handler=cmd_kernels)

    profile_parser = subparsers.add_parser(
        "profile", help="per-phase wall-clock/round breakdown of one variant"
    )
    _common_arguments(profile_parser)
    profile_parser.add_argument(
        "--variant",
        choices=variant_names(),
        default="theorem11",
    )
    profile_parser.add_argument(
        "--t", type=int, default=2, help="tradeoff parameter"
    )
    profile_parser.set_defaults(handler=cmd_profile)

    query_parser = subparsers.add_parser(
        "query", help="answer distance queries from a built oracle"
    )
    _common_arguments(query_parser)
    query_parser.add_argument(
        "--variant",
        choices=variant_names(),
        default="theorem11",
    )
    query_parser.add_argument(
        "--t", type=int, default=2, help="tradeoff parameter"
    )
    query_parser.add_argument(
        "--queries", type=int, default=8, help="random pairs to query"
    )
    query_parser.add_argument(
        "--k", type=int, default=5, help="k for the k-nearest sample"
    )
    query_parser.set_defaults(handler=cmd_query)

    routes_parser = subparsers.add_parser(
        "routes", help="batch-route packets over the oracle's tables"
    )
    _common_arguments(routes_parser)
    routes_parser.add_argument(
        "--variant",
        choices=variant_names(),
        default="theorem11",
    )
    routes_parser.add_argument(
        "--t", type=int, default=2, help="tradeoff parameter"
    )
    routes_parser.add_argument(
        "--pairs", type=int, default=256, help="sampled source/target pairs"
    )
    routes_parser.set_defaults(handler=cmd_routes)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # ``--kernel`` pins every tropical product of the command to one
    # registered kernel; "auto" keeps the per-product selection.
    with use_kernel(getattr(args, "kernel", None)):
        return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
