"""Scoring the chaos scenarios: delivery, degradation, recovery.

Every scenario runs the same workload at least twice — a fault-free
reference and one or more faulted executions — and scores the faulted
runs *against the reference* (the differential discipline the
communication plane already uses for correctness is reused here for
resilience):

* **delivery rate** — delivered rows / attempted rows of a routing run
  (``NaN``-free: an empty instance scores 1.0);
* **stretch degradation** — mean ratio of a protocol's faulted distance
  estimates over the fault-free ones (>= 1: lost gossip can only keep
  estimates too high), with newly-unreachable pairs counted separately;
* **rounds to recovery** — extra rounds the recovered run needed beyond
  the fault-free reference (the latency price of retransmits, replans,
  and waiting out degradation windows).

:class:`ChaosReport` is the JSON artifact: plan description, per-run
metrics, and the score dict, round-trippable through
``ChaosReport.from_json(report.to_json())``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

import numpy as np


def delivery_rate(delivered: int, attempted: int) -> float:
    """Delivered fraction; an empty instance trivially scores 1.0."""
    if attempted <= 0:
        return 1.0
    return delivered / attempted


def stretch_degradation(
    reference: np.ndarray, faulted: np.ndarray
) -> Dict[str, Any]:
    """Compare a protocol's faulted estimates against the fault-free run.

    Ratios are taken over the pairs the reference run resolved to a
    finite positive distance; pairs the faulted run left unreachable
    (``inf``) are excluded from the mean and reported as
    ``disconnected_pairs``.
    """
    reference = np.asarray(reference, dtype=np.float64)
    faulted = np.asarray(faulted, dtype=np.float64)
    comparable = np.isfinite(reference) & (reference > 0)
    disconnected = int((~np.isfinite(faulted[comparable])).sum())
    both = comparable & np.isfinite(faulted)
    ratios = faulted[both] / reference[both]
    return {
        "mean_ratio": float(ratios.mean()) if len(ratios) else None,
        "max_ratio": float(ratios.max()) if len(ratios) else None,
        "degraded_pairs": int((ratios > 1.0).sum()),
        "disconnected_pairs": disconnected,
        "compared_pairs": int(both.sum()),
    }


@dataclass
class RunMetrics:
    """JSON-safe record of one protocol execution inside a scenario."""

    name: str
    attempted: int
    delivered: int
    rounds: int
    spill_rounds: int = 0
    retries: int = 0
    undelivered: int = 0
    reconstructed: int = 0
    parity_words: int = 0
    fault_totals: Optional[Dict[str, int]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def delivery_rate(self) -> float:
        return delivery_rate(self.delivered, self.attempted)

    def snapshot(self) -> Dict[str, Any]:
        out = asdict(self)
        out["delivery_rate"] = self.delivery_rate
        return out


@dataclass
class ChaosReport:
    """The JSON artifact of one scored chaos scenario."""

    scenario: str = ""
    n: int = 0
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    plan: Dict[str, Any] = field(default_factory=dict)
    runs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    score: Dict[str, Any] = field(default_factory=dict)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "n": self.n,
            "seed": self.seed,
            "params": dict(self.params),
            "plan": dict(self.plan),
            "runs": {name: dict(run) for name, run in self.runs.items()},
            "score": dict(self.score),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "ChaosReport":
        data = json.loads(payload)
        return cls(
            scenario=data["scenario"],
            n=data["n"],
            seed=data["seed"],
            params=data["params"],
            plan=data["plan"],
            runs=data["runs"],
            score=data["score"],
        )


def recovery_score(
    clean: RunMetrics,
    faulted: RunMetrics,
    recovered: RunMetrics,
) -> Dict[str, Any]:
    """The canonical three-run score: damage, recovery gain, latency price.

    ``recovery_gain`` is the delivery-rate improvement bounded retry /
    replanning bought over the unrecovered run under the *same* plan and
    seed; ``rounds_to_recovery`` is the extra rounds the recovered run
    spent beyond the fault-free reference.
    """
    gain = recovered.delivery_rate - faulted.delivery_rate
    return {
        "delivery_no_recovery": faulted.delivery_rate,
        "delivery_rate": recovered.delivery_rate,
        "recovery_gain": gain,
        "rounds_clean": clean.rounds,
        "rounds_recovered": recovered.rounds,
        "rounds_to_recovery": recovered.rounds - clean.rounds,
        "retries_used": recovered.retries,
        "undelivered": recovered.undelivered,
        "reconstructed": recovered.reconstructed,
        "perfect": recovered.delivery_rate == 1.0,
    }


__all__ = [
    "ChaosReport",
    "RunMetrics",
    "delivery_rate",
    "recovery_score",
    "stretch_degradation",
]
