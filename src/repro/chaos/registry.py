"""Scenario registry: one catalogue of every chaos scenario in the repo.

Mirrors :mod:`repro.core.registry` (the algorithm-variant registry) for
the resilience workload class: a scenario pairs a
:class:`~repro.cclique.faults.FaultPlan` with a protocol run and a
scoring rule, registers itself once via :func:`register_scenario`, and
every consumer — ``python -m repro chaos``, ``benchmarks/bench_chaos.py``,
the test suite — enumerates the same catalogue.

The uniform runner signature is
``runner(n, seed, **params) -> ChaosReport``; :func:`run_scenario` is
the shared dispatch path owning parameter-default resolution and report
stamping (scenario name, ``n``, ``seed``, resolved params), so a
runner only fills in the plan, the runs, and the score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

from .scoring import ChaosReport

#: Uniform runner signature: (n, seed, **params) -> ChaosReport.
ScenarioRunner = Callable[..., ChaosReport]


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything a consumer needs to know about one registered scenario."""

    name: str
    runner: ScenarioRunner
    summary: str
    faults: str  # human description of what the plan injects
    recovery: str  # human description of the recovery mechanism scored
    default_params: Mapping[str, Any] = field(default_factory=dict)

    def resolve_params(self, **params: Any) -> Dict[str, Any]:
        """Defaults overlaid with explicit values; unknown keys raise."""
        unknown = set(params) - set(self.default_params)
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} does not accept "
                f"{', '.join(sorted(unknown))}; "
                f"accepted: {', '.join(sorted(self.default_params))}"
            )
        resolved = dict(self.default_params)
        resolved.update(
            {key: value for key, value in params.items() if value is not None}
        )
        return resolved


_SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(
    name: str,
    *,
    summary: str,
    faults: str,
    recovery: str,
    default_params: Optional[Mapping[str, Any]] = None,
) -> Callable[[ScenarioRunner], ScenarioRunner]:
    """Decorator registering one chaos scenario.

    Registration order is preserved and defines enumeration order
    everywhere (the CLI table, the benchmark sweep).
    """

    def decorator(runner: ScenarioRunner) -> ScenarioRunner:
        if name in _SCENARIOS:
            raise ValueError(f"scenario {name!r} is already registered")
        _SCENARIOS[name] = ScenarioSpec(
            name=name,
            runner=runner,
            summary=summary,
            faults=faults,
            recovery=recovery,
            default_params=dict(default_params or {}),
        )
        return runner

    return decorator


def get_scenario(name: str) -> ScenarioSpec:
    spec = _SCENARIOS.get(name)
    if spec is None:
        raise ValueError(
            f"unknown scenario {name!r}; registered: "
            f"{', '.join(_SCENARIOS) or '(none)'}"
        )
    return spec


def scenario_names() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(_SCENARIOS)


def iter_scenarios() -> Iterator[ScenarioSpec]:
    return iter(_SCENARIOS.values())


def run_scenario(
    name: str, n: int = 64, seed: int = 0, **params: Any
) -> ChaosReport:
    """Run one registered scenario and return its stamped report."""
    spec = get_scenario(name)
    resolved = spec.resolve_params(**params)
    report = spec.runner(int(n), int(seed), **resolved)
    report.scenario = spec.name
    report.n = int(n)
    report.seed = int(seed)
    report.params = resolved
    return report


__all__ = [
    "ScenarioRunner",
    "ScenarioSpec",
    "get_scenario",
    "iter_scenarios",
    "register_scenario",
    "run_scenario",
    "scenario_names",
]
