"""The built-in chaos scenarios: fault plan + workload + score.

Each scenario follows the same differential shape — run a seeded
workload clean, run it under a :class:`~repro.cclique.faults.FaultPlan`,
and (where a recovery mechanism exists) run it a third time with
recovery enabled under the *same* plan and seed, so the score isolates
exactly what the faults cost and what recovery buys back:

* ``route-drop`` — i.i.d. message loss against two-phase batch routing;
  recovery = ack/timeout bounded retransmit (retries face fresh loss
  draws, so delivery climbs toward 1 geometrically).
* ``route-crash`` — fail-stop crash of the most-loaded relay; recovery =
  crash-aware relay replanning + retransmit (rows with a dead *endpoint*
  stay undeliverable — that bound is reported separately).
* ``route-degrade-delay`` — a bandwidth-degradation window plus random
  delays; nothing is lost, so this scores graceful degradation: delivery
  stays 1.0 while rounds-to-recovery absorbs the damage.
* ``route-corrupt`` — payload bit-flips with the routing header
  shielded; scores delivered-payload integrity against the originals.
* ``bellman-ford-drop`` — protocol-level measurement: gossip under
  message loss, scored as stretch degradation vs the fault-free
  differential reference.

All workloads are pure functions of ``(n, seed)``; every run inside a
scenario shares them, which is what makes the three-run comparison a
controlled experiment rather than three anecdotes.
"""

from __future__ import annotations

from collections import Counter
from typing import Tuple

import numpy as np

from ..cclique.engine import MessageBatch
from ..cclique.faults import (
    BandwidthDegrade,
    FaultPlan,
    LinkDrop,
    MessageDelay,
    NodeCrash,
    PayloadCorrupt,
)
from ..cclique.routing import RoutingStats, route_batch_two_phase, two_phase_relays
from ..graphs.generators import erdos_renyi
from ..protocols.bellman_ford import run_distributed_bellman_ford
from .registry import register_scenario
from .scoring import ChaosReport, RunMetrics, recovery_score, stretch_degradation


def _route_workload(n: int, seed: int, load: int) -> MessageBatch:
    """``load`` random permutations: each node sends/receives ``load`` rows.

    Payload is one word per row, unique per row, so delivered rows are
    attributable and corruption is detectable by value.
    """
    rng = np.random.default_rng((seed, n, load))
    src = np.tile(np.arange(n, dtype=np.int64), load)
    dst = np.concatenate([rng.permutation(n) for _ in range(load)])
    payload = np.arange(load * n, dtype=np.float64).reshape(-1, 1) + 0.5
    return MessageBatch(src=src, dst=dst, payload=payload)


def _run_metrics(
    name: str, attempted: int, delivered: int, stats: RoutingStats
) -> RunMetrics:
    return RunMetrics(
        name=name,
        attempted=attempted,
        delivered=delivered,
        rounds=stats.rounds,
        spill_rounds=stats.spill_rounds,
        retries=stats.retries,
        undelivered=stats.undelivered,
        fault_totals=stats.fault_totals,
    )


@register_scenario(
    "route-drop",
    summary="two-phase batch routing under i.i.d. message loss",
    faults="LinkDrop(probability=drop) on every link, every round",
    recovery="ack/timeout bounded retransmit (max_retries=retries)",
    default_params={
        "drop": 0.05,
        "retries": 3,
        "load": 4,
        "bandwidth_words": 4,
    },
)
def _route_drop(
    n: int, seed: int, *, drop: float, retries: int, load: int,
    bandwidth_words: int,
) -> ChaosReport:
    batch = _route_workload(n, seed, int(load))
    plan = FaultPlan((LinkDrop(probability=float(drop)),), seed=seed)
    clean_delivery, clean_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words
    )
    faulted_delivery, faulted_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words, faults=plan, max_retries=0
    )
    recovered_delivery, recovered_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words, faults=plan,
        max_retries=int(retries),
    )
    clean = _run_metrics("clean", len(batch), len(clean_delivery), clean_stats)
    faulted = _run_metrics(
        "faulted", len(batch), len(faulted_delivery), faulted_stats
    )
    recovered = _run_metrics(
        "recovered", len(batch), len(recovered_delivery), recovered_stats
    )
    return ChaosReport(
        plan=plan.describe(),
        runs={m.name: m.snapshot() for m in (clean, faulted, recovered)},
        score=recovery_score(clean, faulted, recovered),
    )


@register_scenario(
    "route-crash",
    summary="fail-stop crash of the most-loaded relay during batch routing",
    faults="NodeCrash(node=busiest relay, at_round=0)",
    recovery="crash-aware relay replanning + bounded retransmit",
    default_params={"retries": 2, "load": 4, "bandwidth_words": 4},
)
def _route_crash(
    n: int, seed: int, *, retries: int, load: int, bandwidth_words: int
) -> ChaosReport:
    batch = _route_workload(n, seed, int(load))
    relay = two_phase_relays(batch.src, batch.dst, n)
    crash = int(np.bincount(relay, minlength=n).argmax())
    plan = FaultPlan((NodeCrash(node=crash, at_round=0),), seed=seed)
    # Rows whose own endpoints are the dead node can never deliver; the
    # recovery bound is delivery over the deliverable remainder.
    deliverable = int(((batch.src != crash) & (batch.dst != crash)).sum())
    clean_delivery, clean_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words
    )
    faulted_delivery, faulted_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words, faults=plan,
        max_retries=0, avoid_crashed=False,
    )
    recovered_delivery, recovered_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words, faults=plan,
        max_retries=int(retries), avoid_crashed=True,
    )
    clean = _run_metrics("clean", len(batch), len(clean_delivery), clean_stats)
    faulted = _run_metrics(
        "faulted", len(batch), len(faulted_delivery), faulted_stats
    )
    recovered = _run_metrics(
        "recovered", len(batch), len(recovered_delivery), recovered_stats
    )
    score = recovery_score(clean, faulted, recovered)
    score["crashed_node"] = crash
    score["deliverable"] = deliverable
    score["deliverable_rate"] = (
        len(recovered_delivery) / deliverable if deliverable else 1.0
    )
    return ChaosReport(
        plan=plan.describe(),
        runs={m.name: m.snapshot() for m in (clean, faulted, recovered)},
        score=score,
    )


@register_scenario(
    "route-degrade-delay",
    summary="bandwidth-degradation window + random delays: graceful slowdown",
    faults=(
        "BandwidthDegrade(capacity_words=capacity, rounds [0, degrade_until)) "
        "+ MessageDelay(probability=delay_p, max_delay=max_delay)"
    ),
    recovery="none needed — nothing is lost; the score is the round cost",
    default_params={
        "delay_p": 0.15,
        "max_delay": 3,
        "capacity": 2,
        "degrade_until": 6,
        "load": 4,
        "bandwidth_words": 4,
    },
)
def _route_degrade_delay(
    n: int, seed: int, *, delay_p: float, max_delay: int, capacity: int,
    degrade_until: int, load: int, bandwidth_words: int,
) -> ChaosReport:
    batch = _route_workload(n, seed, int(load))
    plan = FaultPlan(
        (
            BandwidthDegrade(
                capacity_words=int(capacity), until_round=int(degrade_until)
            ),
            MessageDelay(
                probability=float(delay_p), max_delay=int(max_delay)
            ),
        ),
        seed=seed,
    )
    clean_delivery, clean_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words
    )
    faulted_delivery, faulted_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words, faults=plan, max_retries=0
    )
    clean = _run_metrics("clean", len(batch), len(clean_delivery), clean_stats)
    faulted = _run_metrics(
        "faulted", len(batch), len(faulted_delivery), faulted_stats
    )
    return ChaosReport(
        plan=plan.describe(),
        runs={m.name: m.snapshot() for m in (clean, faulted)},
        score={
            "delivery_no_recovery": faulted.delivery_rate,
            "delivery_rate": faulted.delivery_rate,
            "recovery_gain": 0.0,
            "rounds_clean": clean.rounds,
            "rounds_recovered": faulted.rounds,
            "rounds_to_recovery": faulted.rounds - clean.rounds,
            "retries_used": 0,
            "perfect": faulted.delivery_rate == 1.0,
        },
    )


@register_scenario(
    "route-corrupt",
    summary="payload bit-flips with the routing header shielded",
    faults=(
        "PayloadCorrupt(probability=corrupt_p, protect_prefix=2) — the "
        "dst/rowid header words stay intact, data words flip"
    ),
    recovery="none — delivery stays full; the score is payload integrity",
    default_params={"corrupt_p": 0.2, "load": 4, "bandwidth_words": 4},
)
def _route_corrupt(
    n: int, seed: int, *, corrupt_p: float, load: int, bandwidth_words: int
) -> ChaosReport:
    batch = _route_workload(n, seed, int(load))
    plan = FaultPlan(
        (PayloadCorrupt(probability=float(corrupt_p), protect_prefix=2),),
        seed=seed,
    )
    clean_delivery, clean_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words
    )
    faulted_delivery, faulted_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words, faults=plan, max_retries=0
    )
    # Multiset integrity: (dst, payload word) pairs that arrived exactly
    # as sent.  Unique payload values make the match unambiguous.
    sent = Counter(
        zip(batch.dst.tolist(), batch.payload[:, 0].tolist())
    )
    arrived = Counter(
        zip(
            faulted_delivery.dst.tolist(),
            faulted_delivery.payload[:, 0].tolist(),
        )
    )
    intact = sum((sent & arrived).values())
    clean = _run_metrics("clean", len(batch), len(clean_delivery), clean_stats)
    faulted = _run_metrics(
        "faulted", len(batch), len(faulted_delivery), faulted_stats
    )
    delivered = len(faulted_delivery)
    return ChaosReport(
        plan=plan.describe(),
        runs={m.name: m.snapshot() for m in (clean, faulted)},
        score={
            "delivery_no_recovery": faulted.delivery_rate,
            "delivery_rate": faulted.delivery_rate,
            "recovery_gain": 0.0,
            "rounds_clean": clean.rounds,
            "rounds_recovered": faulted.rounds,
            "rounds_to_recovery": faulted.rounds - clean.rounds,
            "retries_used": 0,
            "perfect": faulted.delivery_rate == 1.0,
            "intact_payloads": intact,
            "payload_integrity": intact / delivered if delivered else 1.0,
            "corrupted_rows": (faulted.fault_totals or {}).get("corrupted", 0),
        },
    )


@register_scenario(
    "bellman-ford-drop",
    summary="distributed Bellman-Ford gossip under message loss",
    faults="LinkDrop(probability=drop) on every link, every round",
    recovery=(
        "none — gossip redundancy only; scored as stretch degradation vs "
        "the fault-free differential reference"
    ),
    default_params={"drop": 0.05, "batch": 8, "degree": 4.0},
)
def _bellman_ford_drop(
    n: int, seed: int, *, drop: float, batch: int, degree: float
) -> ChaosReport:
    rng = np.random.default_rng((seed, n))
    graph = erdos_renyi(n, min(1.0, float(degree) / n), rng)
    plan = FaultPlan((LinkDrop(probability=float(drop)),), seed=seed)
    clean_run = run_distributed_bellman_ford(graph, batch=int(batch))
    faulted_run = run_distributed_bellman_ford(
        graph, batch=int(batch), faults=plan
    )
    degradation = stretch_degradation(clean_run.estimate, faulted_run.estimate)
    pairs = int(np.isfinite(clean_run.estimate).sum())
    clean = RunMetrics(
        name="clean", attempted=pairs, delivered=pairs, rounds=clean_run.rounds
    )
    resolved = degradation["compared_pairs"]
    faulted = RunMetrics(
        name="faulted",
        attempted=degradation["compared_pairs"] + degradation["disconnected_pairs"],
        delivered=resolved,
        rounds=faulted_run.rounds,
        fault_totals=faulted_run.fault_totals,
    )
    return ChaosReport(
        plan=plan.describe(),
        runs={m.name: m.snapshot() for m in (clean, faulted)},
        score={
            "stretch_degradation": degradation["mean_ratio"],
            "max_stretch_degradation": degradation["max_ratio"],
            "degraded_pairs": degradation["degraded_pairs"],
            "disconnected_pairs": degradation["disconnected_pairs"],
            "compared_pairs": degradation["compared_pairs"],
            "rounds_clean": clean.rounds,
            "rounds_recovered": faulted.rounds,
            "recovered": bool(
                np.array_equal(clean_run.estimate, faulted_run.estimate)
            ),
        },
    )


__all__: Tuple[str, ...] = ()
