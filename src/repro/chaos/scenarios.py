"""The built-in chaos scenarios: fault plan + workload + score.

Each scenario follows the same differential shape — run a seeded
workload clean, run it under a :class:`~repro.cclique.faults.FaultPlan`,
and (where a recovery mechanism exists) run it a third time with
recovery enabled under the *same* plan and seed, so the score isolates
exactly what the faults cost and what recovery buys back:

* ``route-drop`` — i.i.d. message loss against two-phase batch routing;
  recovery = ack/timeout bounded retransmit (retries face fresh loss
  draws, so delivery climbs toward 1 geometrically).
* ``route-crash`` — fail-stop crash of the most-loaded relay; recovery =
  crash-aware relay replanning + retransmit (rows with a dead *endpoint*
  stay undeliverable — that bound is reported separately).
* ``route-degrade-delay`` — a bandwidth-degradation window plus random
  delays; nothing is lost, so this scores graceful degradation: delivery
  stays 1.0 while rounds-to-recovery absorbs the damage.
* ``route-corrupt`` — payload bit-flips with the routing header
  shielded; scores delivered-payload integrity against the originals.
* ``bellman-ford-drop`` — protocol-level measurement: gossip under
  message loss, scored as stretch degradation vs the fault-free
  differential reference.
* ``byzantine-corrupt`` — adversarial payload bit-flips against the
  integrity layer: a no-integrity baseline (detection rate 0.0), a
  checksum-verified retransmit arm, and an erasure-coded arm; the score
  is the detection rate plus delivered-payload integrity per arm.
* ``pipeline-degrade`` — the full APSP pipeline under a lossy, degraded
  fabric: the input graph is disseminated over the faulted clique and
  the solver runs on what survived; recovery = erasure-coded
  retransmit; scored as stretch degradation vs the clean estimate.

All workloads are pure functions of ``(n, seed)``; every run inside a
scenario shares them, which is what makes the three-run comparison a
controlled experiment rather than three anecdotes.
"""

from __future__ import annotations

from collections import Counter
from typing import Tuple

import numpy as np

from ..cclique.engine import MessageBatch
from ..cclique.faults import (
    BandwidthDegrade,
    FaultPlan,
    LinkDrop,
    MessageDelay,
    NodeCrash,
    PayloadCorrupt,
)
from ..cclique.integrity import IntegrityPolicy
from ..cclique.routing import RoutingStats, route_batch_two_phase, two_phase_relays
from ..core.apsp import approximate_apsp
from ..graphs.generators import erdos_renyi
from ..protocols.bellman_ford import run_distributed_bellman_ford
from .registry import register_scenario
from .scoring import ChaosReport, RunMetrics, recovery_score, stretch_degradation


def _route_workload(n: int, seed: int, load: int) -> MessageBatch:
    """``load`` random permutations: each node sends/receives ``load`` rows.

    Payload is one word per row, unique per row, so delivered rows are
    attributable and corruption is detectable by value.
    """
    rng = np.random.default_rng((seed, n, load))
    src = np.tile(np.arange(n, dtype=np.int64), load)
    dst = np.concatenate([rng.permutation(n) for _ in range(load)])
    payload = np.arange(load * n, dtype=np.float64).reshape(-1, 1) + 0.5
    return MessageBatch(src=src, dst=dst, payload=payload)


def _run_metrics(
    name: str, attempted: int, delivered: int, stats: RoutingStats
) -> RunMetrics:
    return RunMetrics(
        name=name,
        attempted=attempted,
        delivered=delivered,
        rounds=stats.rounds,
        spill_rounds=stats.spill_rounds,
        retries=stats.retries,
        undelivered=stats.undelivered,
        reconstructed=stats.reconstructed,
        parity_words=stats.parity_words,
        fault_totals=stats.fault_totals,
    )


@register_scenario(
    "route-drop",
    summary="two-phase batch routing under i.i.d. message loss",
    faults="LinkDrop(probability=drop) on every link, every round",
    recovery="ack/timeout bounded retransmit (max_retries=retries)",
    default_params={
        "drop": 0.05,
        "retries": 3,
        "load": 4,
        "bandwidth_words": 4,
    },
)
def _route_drop(
    n: int, seed: int, *, drop: float, retries: int, load: int,
    bandwidth_words: int,
) -> ChaosReport:
    batch = _route_workload(n, seed, int(load))
    plan = FaultPlan((LinkDrop(probability=float(drop)),), seed=seed)
    clean_delivery, clean_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words
    )
    faulted_delivery, faulted_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words, faults=plan, max_retries=0
    )
    recovered_delivery, recovered_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words, faults=plan,
        max_retries=int(retries),
    )
    clean = _run_metrics("clean", len(batch), len(clean_delivery), clean_stats)
    faulted = _run_metrics(
        "faulted", len(batch), len(faulted_delivery), faulted_stats
    )
    recovered = _run_metrics(
        "recovered", len(batch), len(recovered_delivery), recovered_stats
    )
    return ChaosReport(
        plan=plan.describe(),
        runs={m.name: m.snapshot() for m in (clean, faulted, recovered)},
        score=recovery_score(clean, faulted, recovered),
    )


@register_scenario(
    "route-crash",
    summary="fail-stop crash of the most-loaded relay during batch routing",
    faults="NodeCrash(node=busiest relay, at_round=0)",
    recovery="crash-aware relay replanning + bounded retransmit",
    default_params={"retries": 2, "load": 4, "bandwidth_words": 4},
)
def _route_crash(
    n: int, seed: int, *, retries: int, load: int, bandwidth_words: int
) -> ChaosReport:
    batch = _route_workload(n, seed, int(load))
    relay = two_phase_relays(batch.src, batch.dst, n)
    crash = int(np.bincount(relay, minlength=n).argmax())
    plan = FaultPlan((NodeCrash(node=crash, at_round=0),), seed=seed)
    # Rows whose own endpoints are the dead node can never deliver; the
    # recovery bound is delivery over the deliverable remainder.
    deliverable = int(((batch.src != crash) & (batch.dst != crash)).sum())
    clean_delivery, clean_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words
    )
    faulted_delivery, faulted_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words, faults=plan,
        max_retries=0, avoid_crashed=False,
    )
    recovered_delivery, recovered_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words, faults=plan,
        max_retries=int(retries), avoid_crashed=True,
    )
    clean = _run_metrics("clean", len(batch), len(clean_delivery), clean_stats)
    faulted = _run_metrics(
        "faulted", len(batch), len(faulted_delivery), faulted_stats
    )
    recovered = _run_metrics(
        "recovered", len(batch), len(recovered_delivery), recovered_stats
    )
    score = recovery_score(clean, faulted, recovered)
    score["crashed_node"] = crash
    score["deliverable"] = deliverable
    score["deliverable_rate"] = (
        len(recovered_delivery) / deliverable if deliverable else 1.0
    )
    return ChaosReport(
        plan=plan.describe(),
        runs={m.name: m.snapshot() for m in (clean, faulted, recovered)},
        score=score,
    )


@register_scenario(
    "route-degrade-delay",
    summary="bandwidth-degradation window + random delays: graceful slowdown",
    faults=(
        "BandwidthDegrade(capacity_words=capacity, rounds [0, degrade_until)) "
        "+ MessageDelay(probability=delay_p, max_delay=max_delay)"
    ),
    recovery="none needed — nothing is lost; the score is the round cost",
    default_params={
        "delay_p": 0.15,
        "max_delay": 3,
        "capacity": 2,
        "degrade_until": 6,
        "load": 4,
        "bandwidth_words": 4,
    },
)
def _route_degrade_delay(
    n: int, seed: int, *, delay_p: float, max_delay: int, capacity: int,
    degrade_until: int, load: int, bandwidth_words: int,
) -> ChaosReport:
    batch = _route_workload(n, seed, int(load))
    plan = FaultPlan(
        (
            BandwidthDegrade(
                capacity_words=int(capacity), until_round=int(degrade_until)
            ),
            MessageDelay(
                probability=float(delay_p), max_delay=int(max_delay)
            ),
        ),
        seed=seed,
    )
    clean_delivery, clean_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words
    )
    faulted_delivery, faulted_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words, faults=plan, max_retries=0
    )
    clean = _run_metrics("clean", len(batch), len(clean_delivery), clean_stats)
    faulted = _run_metrics(
        "faulted", len(batch), len(faulted_delivery), faulted_stats
    )
    return ChaosReport(
        plan=plan.describe(),
        runs={m.name: m.snapshot() for m in (clean, faulted)},
        score={
            "delivery_no_recovery": faulted.delivery_rate,
            "delivery_rate": faulted.delivery_rate,
            "recovery_gain": 0.0,
            "rounds_clean": clean.rounds,
            "rounds_recovered": faulted.rounds,
            "rounds_to_recovery": faulted.rounds - clean.rounds,
            "retries_used": 0,
            "perfect": faulted.delivery_rate == 1.0,
        },
    )


@register_scenario(
    "route-corrupt",
    summary="payload bit-flips with the routing header shielded",
    faults=(
        "PayloadCorrupt(probability=corrupt_p, protect_prefix=2) — the "
        "dst/rowid header words stay intact, data words flip"
    ),
    recovery="none — delivery stays full; the score is payload integrity",
    default_params={"corrupt_p": 0.2, "load": 4, "bandwidth_words": 4},
)
def _route_corrupt(
    n: int, seed: int, *, corrupt_p: float, load: int, bandwidth_words: int
) -> ChaosReport:
    batch = _route_workload(n, seed, int(load))
    plan = FaultPlan(
        (PayloadCorrupt(probability=float(corrupt_p), protect_prefix=2),),
        seed=seed,
    )
    clean_delivery, clean_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words
    )
    faulted_delivery, faulted_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words, faults=plan, max_retries=0
    )
    # Multiset integrity: (dst, payload word) pairs that arrived exactly
    # as sent.  Unique payload values make the match unambiguous.
    sent = Counter(
        zip(batch.dst.tolist(), batch.payload[:, 0].tolist())
    )
    arrived = Counter(
        zip(
            faulted_delivery.dst.tolist(),
            faulted_delivery.payload[:, 0].tolist(),
        )
    )
    intact = sum((sent & arrived).values())
    clean = _run_metrics("clean", len(batch), len(clean_delivery), clean_stats)
    faulted = _run_metrics(
        "faulted", len(batch), len(faulted_delivery), faulted_stats
    )
    delivered = len(faulted_delivery)
    return ChaosReport(
        plan=plan.describe(),
        runs={m.name: m.snapshot() for m in (clean, faulted)},
        score={
            "delivery_no_recovery": faulted.delivery_rate,
            "delivery_rate": faulted.delivery_rate,
            "recovery_gain": 0.0,
            "rounds_clean": clean.rounds,
            "rounds_recovered": faulted.rounds,
            "rounds_to_recovery": faulted.rounds - clean.rounds,
            "retries_used": 0,
            "perfect": faulted.delivery_rate == 1.0,
            "intact_payloads": intact,
            "payload_integrity": intact / delivered if delivered else 1.0,
            "corrupted_rows": (faulted.fault_totals or {}).get("corrupted", 0),
        },
    )


@register_scenario(
    "bellman-ford-drop",
    summary="distributed Bellman-Ford gossip under message loss",
    faults="LinkDrop(probability=drop) on every link, every round",
    recovery=(
        "none — gossip redundancy only; scored as stretch degradation vs "
        "the fault-free differential reference"
    ),
    default_params={"drop": 0.05, "batch": 8, "degree": 4.0},
)
def _bellman_ford_drop(
    n: int, seed: int, *, drop: float, batch: int, degree: float
) -> ChaosReport:
    rng = np.random.default_rng((seed, n))
    graph = erdos_renyi(n, min(1.0, float(degree) / n), rng)
    plan = FaultPlan((LinkDrop(probability=float(drop)),), seed=seed)
    clean_run = run_distributed_bellman_ford(graph, batch=int(batch))
    faulted_run = run_distributed_bellman_ford(
        graph, batch=int(batch), faults=plan
    )
    degradation = stretch_degradation(clean_run.estimate, faulted_run.estimate)
    pairs = int(np.isfinite(clean_run.estimate).sum())
    clean = RunMetrics(
        name="clean", attempted=pairs, delivered=pairs, rounds=clean_run.rounds
    )
    resolved = degradation["compared_pairs"]
    faulted = RunMetrics(
        name="faulted",
        attempted=degradation["compared_pairs"] + degradation["disconnected_pairs"],
        delivered=resolved,
        rounds=faulted_run.rounds,
        fault_totals=faulted_run.fault_totals,
    )
    return ChaosReport(
        plan=plan.describe(),
        runs={m.name: m.snapshot() for m in (clean, faulted)},
        score={
            "stretch_degradation": degradation["mean_ratio"],
            "max_stretch_degradation": degradation["max_ratio"],
            "degraded_pairs": degradation["degraded_pairs"],
            "disconnected_pairs": degradation["disconnected_pairs"],
            "compared_pairs": degradation["compared_pairs"],
            "rounds_clean": clean.rounds,
            "rounds_recovered": faulted.rounds,
            "recovered": bool(
                np.array_equal(clean_run.estimate, faulted_run.estimate)
            ),
        },
    )


def _detection_rate(metrics: RunMetrics) -> float:
    """detected / corrupted; vacuously 1.0 when nothing was corrupted."""
    totals = metrics.fault_totals or {}
    corrupted = totals.get("corrupted", 0)
    if not corrupted:
        return 1.0
    return totals.get("detected", 0) / corrupted


def _intact_payloads(batch: MessageBatch, delivery) -> int:
    """Multiset count of (dst, payload word) pairs arriving exactly as sent."""
    sent = Counter(zip(batch.dst.tolist(), batch.payload[:, 0].tolist()))
    arrived = Counter(
        zip(delivery.dst.tolist(), delivery.payload[:, 0].tolist())
    )
    return sum((sent & arrived).values())


@register_scenario(
    "byzantine-corrupt",
    summary="adversarial payload bit-flips against the checksum integrity layer",
    faults=(
        "PayloadCorrupt(probability=corrupt_p, protect_prefix=2) — routing "
        "headers shielded, data words flip adversarially"
    ),
    recovery=(
        "checksum quarantine + bounded retransmit; the erasure arm adds "
        "XOR-parity reconstruction on top"
    ),
    default_params={
        "corrupt_p": 0.15,
        "retries": 4,
        "load": 2,
        "bandwidth_words": 4,
        "group": 4,
    },
)
def _byzantine_corrupt(
    n: int, seed: int, *, corrupt_p: float, retries: int, load: int,
    bandwidth_words: int, group: int,
) -> ChaosReport:
    """Four arms under the same plan and seed.

    * ``clean`` — fault-free reference;
    * ``baseline`` — corruption with **no** integrity layer: delivery
      stays high but flipped payloads are silently accepted
      (detection rate 0.0 — the gap the checksums close);
    * ``detected`` — checksums quarantine every flipped row, the
      re-request mask retransmits it (detection rate 1.0);
    * ``erasure`` — same integrity layer with XOR-parity recovery, so
      quarantined rows are also reconstructable in-round.
    """
    batch = _route_workload(n, seed, int(load))
    plan = FaultPlan(
        (PayloadCorrupt(probability=float(corrupt_p), protect_prefix=2),),
        seed=seed,
    )
    clean_delivery, clean_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words
    )
    base_delivery, base_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words, faults=plan, max_retries=0
    )
    det_delivery, det_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words, faults=plan,
        max_retries=int(retries), integrity=IntegrityPolicy(),
    )
    era_delivery, era_stats = route_batch_two_phase(
        batch, n, bandwidth_words=bandwidth_words, faults=plan,
        max_retries=int(retries), integrity=IntegrityPolicy(),
        recovery="erasure", erasure_group=int(group),
    )
    clean = _run_metrics("clean", len(batch), len(clean_delivery), clean_stats)
    baseline = _run_metrics(
        "baseline", len(batch), len(base_delivery), base_stats
    )
    detected = _run_metrics(
        "detected", len(batch), len(det_delivery), det_stats
    )
    erasure = _run_metrics(
        "erasure", len(batch), len(era_delivery), era_stats
    )
    for metrics, delivery in (
        (baseline, base_delivery),
        (detected, det_delivery),
        (erasure, era_delivery),
    ):
        intact = _intact_payloads(batch, delivery)
        metrics.extra["intact_payloads"] = intact
        metrics.extra["payload_integrity"] = (
            intact / len(delivery) if len(delivery) else 1.0
        )
        metrics.extra["detection_rate"] = _detection_rate(metrics)
    score = recovery_score(clean, baseline, detected)
    score.update(
        {
            "detection_rate": detected.extra["detection_rate"],
            "detection_rate_baseline": baseline.extra["detection_rate"],
            "payload_integrity_baseline": baseline.extra["payload_integrity"],
            "payload_integrity": detected.extra["payload_integrity"],
            "payload_integrity_erasure": erasure.extra["payload_integrity"],
            "erasure_delivery": erasure.delivery_rate,
            "erasure_rounds": erasure.rounds,
            "erasure_reconstructed": erasure.reconstructed,
            "perfect": (
                detected.delivery_rate == 1.0
                and detected.extra["payload_integrity"] == 1.0
            ),
        }
    )
    return ChaosReport(
        plan=plan.describe(),
        runs={m.name: m.snapshot() for m in (clean, baseline, detected, erasure)},
        score=score,
    )


def _dissemination_metrics(name: str, meta: dict) -> RunMetrics:
    """RunMetrics view of an ``Estimate.meta['dissemination']`` record."""
    return RunMetrics(
        name=name,
        attempted=meta["attempted_edges"],
        delivered=meta["delivered_edges"],
        rounds=meta["rounds"],
        retries=meta["retries"],
        undelivered=meta["undelivered_messages"],
        reconstructed=meta["reconstructed"],
        fault_totals=meta["fault_totals"],
        extra={"edge_delivery_rate": meta["edge_delivery_rate"]},
    )


@register_scenario(
    "pipeline-degrade",
    summary="full APSP pipeline on a graph disseminated over a lossy fabric",
    faults=(
        "LinkDrop(probability=drop) + BandwidthDegrade(capacity_words="
        "capacity, rounds [0, degrade_until)) during edge dissemination"
    ),
    recovery="erasure-coded dissemination + bounded retransmit",
    default_params={
        "drop": 0.1,
        "retries": 4,
        "capacity": 2,
        "degrade_until": 4,
        "degree": 6.0,
        "variant": "theorem11",
    },
)
def _pipeline_degrade(
    n: int, seed: int, *, drop: float, retries: int, capacity: int,
    degrade_until: int, degree: float, variant: str,
) -> ChaosReport:
    """End-to-end chaos: the solver runs on whatever edges survived.

    All three arms disseminate the same graph and then run the same
    same-seeded solver, so the only difference between estimates is
    what the fabric lost.  The clean arm uses an *empty* fault plan —
    the dissemination layer is exercised identically, and its output
    graph (hence estimate) must match the direct run bit-for-bit.
    Corruption is deliberately absent here: structurally invalid edges
    are rejected by dissemination's validation, which would conflate
    loss with detection — ``byzantine-corrupt`` scores that axis.
    """
    rng = np.random.default_rng((seed, n))
    graph = erdos_renyi(n, min(1.0, float(degree) / n), rng)
    plan = FaultPlan(
        (
            LinkDrop(probability=float(drop)),
            BandwidthDegrade(
                capacity_words=int(capacity), until_round=int(degrade_until)
            ),
        ),
        seed=seed,
    )
    empty_plan = FaultPlan((), seed=seed)

    def solve(**chaos_kwargs):
        return approximate_apsp(
            graph, np.random.default_rng(seed), variant=str(variant),
            **chaos_kwargs,
        )

    clean_run = solve(faults=empty_plan)
    faulted_run = solve(faults=plan)
    recovered_run = solve(
        faults=plan, max_retries=int(retries), recovery="erasure"
    )
    clean = _dissemination_metrics("clean", clean_run.meta["dissemination"])
    faulted = _dissemination_metrics(
        "faulted", faulted_run.meta["dissemination"]
    )
    recovered = _dissemination_metrics(
        "recovered", recovered_run.meta["dissemination"]
    )
    degradation = stretch_degradation(clean_run.estimate, faulted_run.estimate)
    recovered_deg = stretch_degradation(
        clean_run.estimate, recovered_run.estimate
    )
    score = recovery_score(clean, faulted, recovered)
    score.update(
        {
            "stretch_degradation": degradation["mean_ratio"],
            "max_stretch_degradation": degradation["max_ratio"],
            "degraded_pairs": degradation["degraded_pairs"],
            "disconnected_pairs": degradation["disconnected_pairs"],
            "stretch_recovered": recovered_deg["mean_ratio"],
            "recovered": bool(
                np.array_equal(clean_run.estimate, recovered_run.estimate)
            ),
        }
    )
    return ChaosReport(
        plan=plan.describe(),
        runs={m.name: m.snapshot() for m in (clean, faulted, recovered)},
        score=score,
    )


__all__: Tuple[str, ...] = ()
