"""Chaos harness for the communication plane (see DESIGN.md section 11).

Pairs seeded :class:`~repro.cclique.faults.FaultPlan` injections with
protocol runs and scores the outcome — delivery rate, stretch
degradation vs the fault-free differential reference, rounds to
recovery.  Scenarios live in one registry mirroring the algorithm
variant registry (:mod:`repro.core.registry`)::

    from repro.chaos import run_scenario, scenario_names

    for name in scenario_names():
        report = run_scenario(name, n=64, seed=0)
        print(name, report.score)

Entry points: ``python -m repro chaos`` (scored table + JSON report),
``benchmarks/bench_chaos.py`` (E22 curves), ``examples/chaos_demo.py``.
"""

from .registry import (
    ScenarioRunner,
    ScenarioSpec,
    get_scenario,
    iter_scenarios,
    register_scenario,
    run_scenario,
    scenario_names,
)
from .scoring import (
    ChaosReport,
    RunMetrics,
    delivery_rate,
    recovery_score,
    stretch_degradation,
)

# Importing the module registers the built-in scenarios.
from . import scenarios  # noqa: E402,F401  (registration side effect)

__all__ = [
    "ChaosReport",
    "RunMetrics",
    "ScenarioRunner",
    "ScenarioSpec",
    "delivery_rate",
    "get_scenario",
    "iter_scenarios",
    "recovery_score",
    "register_scenario",
    "run_scenario",
    "scenario_names",
    "stretch_degradation",
]
